"""Online adaptive view advisor: workload log → calibrated cost → plan.

The Section V advisor (``selection/advisor.py`` / ``workload_advisor.py``)
picks views for a *fixed* workload using *estimated* list sizes.  Served
traffic drifts, and the serving layer already measures exactly the
quantities the cost model guesses at: per-query work and I/O counters
(:class:`Measurement`), and — for every materialized view — the exact
q-type list cardinalities the estimates approximate.  This module closes
the loop in three deterministic pieces:

1. :class:`WorkloadLog` — a compact, serializable aggregate of the live
   query stream: per-pattern demand weight (decayed across advisor
   cycles so stale traffic ages out), measured counters, cache/replay
   telemetry, and the measured per-view list cardinalities harvested
   from the catalog.
2. :class:`CalibratedStatistics` — a drop-in replacement for
   :class:`~repro.selection.estimates.DocumentStatistics` whose
   :meth:`~CalibratedStatistics.list_size` answers from *measured*
   cardinalities first and falls back to the independence-assumption
   estimate only for never-materialized patterns.  Every existing
   selection entry point accepts it unchanged
   (:func:`~repro.selection.estimates.estimate_list_size` consults the
   measured map before estimating).
3. :func:`plan_adoption` — the adoption controller: scores candidate
   views mined from the logged patterns by *demand-weighted measured
   benefit density* under a storage budget, and recommends which views
   to adopt, keep, or drop.  Pure function of ``(log, stats, budget,
   currently adopted set)`` — no wall clock, no randomness — so a
   recorded log replays to the identical plan offline
   (``viewjoin advise --from-log``).

:class:`repro.service.QueryService` owns the serving-side integration
(recording, the background cycle cadence, materialization and full
cache/worker invalidation on adopt/drop).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.errors import PatternParseError, SelectionError
from repro.selection.estimates import DocumentStatistics, estimate_list_size
from repro.selection.workload_advisor import (
    estimate_view_bytes,
    recommend_for_workload,
)
from repro.tpq.matching import solution_nodes
from repro.tpq.parser import parse_pattern
from repro.tpq.pattern import Pattern

#: Catalog/planner name prefix marking a view the advisor owns (and may
#: therefore drop when its payoff decays).  User-registered views are
#: never dropped by the controller.
ADVISOR_PREFIX = "adv:"


def advisor_enabled() -> bool:
    """Global kill switch for the online advisor.

    ``REPRO_ADVISOR=0`` (checked when a service is constructed) disables
    recording and the advisor loop entirely, whatever the service flag
    says — the escape hatch for deployments that must pin their view
    set.  The default leaves the per-service ``advisor`` flag in charge.
    """
    return os.environ.get("REPRO_ADVISOR", "1").strip().lower() not in (
        "0", "false", "no", "off",
    )


def advisor_view_name(xpath: str) -> str:
    """The catalog/planner name of an advisor-adopted view."""
    return ADVISOR_PREFIX + xpath


@dataclass(frozen=True)
class Measurement:
    """Measured per-query counters: the single authoritative contract.

    Every answered query exposes exactly one of these
    (:attr:`repro.service.QueryOutcome.measured`); the workload recorder
    and external consumers read it instead of digging through the raw
    ``counters``/``io`` objects and re-deriving totals.  All fields are
    the run's *recorded* deterministic values — for cached/shared
    replays they equal what an independent execution would have
    measured (the service's replay-accounting contract), i.e. the
    query's logical demand.
    """

    #: scalar CPU-side work (``Counters.work``).
    work: int
    elements_scanned: int
    comparisons: int
    logical_reads: int
    physical_reads: int
    matches: int
    #: wall-clock of the run (the only non-deterministic field).
    elapsed_s: float

    def as_dict(self) -> dict[str, float]:
        return {
            "work": self.work,
            "elements_scanned": self.elements_scanned,
            "comparisons": self.comparisons,
            "logical_reads": self.logical_reads,
            "physical_reads": self.physical_reads,
            "matches": self.matches,
            "elapsed_s": self.elapsed_s,
        }


@dataclass
class QueryObservation:
    """Aggregated stream record for one canonical query pattern."""

    query: str
    #: lifetime arrival count (never decayed; telemetry).
    count: int = 0
    #: decayed demand weight — what the controller ranks by.  Each
    #: advisor cycle multiplies it by the decay factor, so patterns that
    #: stop arriving age out and their views become drop candidates.
    weight: float = 0.0
    work: int = 0
    elements_scanned: int = 0
    logical_reads: int = 0
    physical_reads: int = 0
    matches: int = 0
    elapsed_s: float = 0.0
    cache_hits: int = 0
    shared_replays: int = 0
    refuted: int = 0
    degraded: int = 0
    errors: int = 0
    #: view names of the last recorded plan (usage telemetry).
    plan_views: tuple[str, ...] = ()

    def as_dict(self) -> dict[str, object]:
        return {
            "query": self.query,
            "count": self.count,
            "weight": round(self.weight, 6),
            "work": self.work,
            "elements_scanned": self.elements_scanned,
            "logical_reads": self.logical_reads,
            "physical_reads": self.physical_reads,
            "matches": self.matches,
            "elapsed_s": round(self.elapsed_s, 6),
            "cache_hits": self.cache_hits,
            "shared_replays": self.shared_replays,
            "refuted": self.refuted,
            "degraded": self.degraded,
            "errors": self.errors,
            "plan_views": list(self.plan_views),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "QueryObservation":
        try:
            return cls(
                query=str(payload["query"]),
                count=int(payload.get("count", 0)),
                weight=float(payload.get("weight", 0.0)),
                work=int(payload.get("work", 0)),
                elements_scanned=int(payload.get("elements_scanned", 0)),
                logical_reads=int(payload.get("logical_reads", 0)),
                physical_reads=int(payload.get("physical_reads", 0)),
                matches=int(payload.get("matches", 0)),
                elapsed_s=float(payload.get("elapsed_s", 0.0)),
                cache_hits=int(payload.get("cache_hits", 0)),
                shared_replays=int(payload.get("shared_replays", 0)),
                refuted=int(payload.get("refuted", 0)),
                degraded=int(payload.get("degraded", 0)),
                errors=int(payload.get("errors", 0)),
                plan_views=tuple(payload.get("plan_views", ())),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SelectionError(
                f"malformed workload-log observation: {exc}"
            ) from exc


class WorkloadLog:
    """Compact aggregate of the live query stream.

    Observations are keyed by canonical query text in first-arrival
    order, which makes every downstream decision deterministic: the
    candidate pool (and therefore every knapsack tie-break) is a pure
    function of the log contents.  ``view_cardinalities`` carries the
    measured q-type list sizes harvested from materialized views, so a
    saved log replays offline with the same calibration the live
    service had.
    """

    def __init__(self) -> None:
        self._queries: dict[str, QueryObservation] = {}
        #: measured list sizes: view xpath -> tag -> exact |L_tag|.
        self.view_cardinalities: dict[str, dict[str, int]] = {}
        #: lifetime recorded outcomes (including cache hits/refutations).
        self.recorded = 0

    # -- recording -------------------------------------------------------------

    def record(self, outcome) -> None:
        """Fold one answered query into the log.

        ``outcome`` is duck-typed against the
        :class:`repro.service.QueryOutcome` contract: ``query``,
        ``measured`` (a :class:`Measurement`), and the
        ``cached``/``shared``/``refuted``/``degraded``/``error`` flags.
        Counters are accumulated for cached and shared replays too —
        the recorded values equal what an independent execution would
        have measured, so the totals represent the pattern's logical
        demand (what the view set would have to absorb without caching).
        """
        obs = self._queries.get(outcome.query)
        if obs is None:
            obs = QueryObservation(query=outcome.query)
            self._queries[outcome.query] = obs
        self.recorded += 1
        obs.count += 1
        if outcome.refuted:
            obs.refuted += 1
            return
        if getattr(outcome, "error", ""):
            obs.errors += 1
            return
        obs.weight += 1.0
        measured: Measurement = outcome.measured
        obs.work += measured.work
        obs.elements_scanned += measured.elements_scanned
        obs.logical_reads += measured.logical_reads
        obs.physical_reads += measured.physical_reads
        obs.matches += measured.matches
        obs.elapsed_s += measured.elapsed_s
        if outcome.cached:
            obs.cache_hits += 1
        elif getattr(outcome, "shared", False):
            obs.shared_replays += 1
        if getattr(outcome, "degraded", False):
            obs.degraded += 1
        plan_views = tuple(getattr(outcome, "plan_views", ()))
        if plan_views:
            obs.plan_views = plan_views

    def observe_view(self, xpath: str, cardinalities: Mapping[str, int]) -> None:
        """Record the measured per-tag list sizes of a materialized view."""
        self.view_cardinalities[xpath] = dict(cardinalities)

    def harvest_catalog(self, catalog) -> int:
        """Harvest exact list cardinalities from every non-derived
        materialized view that exposes per-tag entry counts; returns how
        many views contributed.  Saved logs then replay offline with the
        same calibration the live service had."""
        harvested = 0
        for info in catalog.views():
            if info.derived:
                continue
            counts = getattr(info.view, "entry_counts", None)
            if counts is None:
                continue
            self.observe_view(info.pattern.to_xpath(), counts())
            harvested += 1
        return harvested

    def decay(self, factor: float = 0.5, floor: float = 0.5) -> int:
        """Age demand weights by ``factor``; prune observations whose
        weight fell below ``floor``.  Called at the end of each advisor
        cycle so traffic that stopped arriving loses its claim on the
        budget — the mechanism behind payoff-decay drops.  Returns how
        many observations were pruned.
        """
        if not 0.0 <= factor <= 1.0:
            raise SelectionError(
                f"decay factor must be in [0, 1], got {factor}"
            )
        doomed: list[str] = []
        for query, obs in self._queries.items():
            obs.weight *= factor
            if obs.weight < floor:
                doomed.append(query)
        for query in doomed:
            del self._queries[query]
        return len(doomed)

    # -- views of the log ------------------------------------------------------

    def observations(self) -> list[QueryObservation]:
        """Observations in first-arrival order (deterministic)."""
        return list(self._queries.values())

    def get(self, query: str) -> QueryObservation | None:
        return self._queries.get(query)

    def __len__(self) -> int:
        """Number of distinct patterns currently held."""
        return len(self._queries)

    def clear(self) -> None:
        self._queries.clear()
        self.view_cardinalities.clear()

    # -- serialization ---------------------------------------------------------

    def as_dict(self) -> dict[str, object]:
        return {
            "recorded": self.recorded,
            "queries": [obs.as_dict() for obs in self._queries.values()],
            "view_cardinalities": {
                xpath: dict(sizes)
                for xpath, sizes in self.view_cardinalities.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "WorkloadLog":
        log = cls()
        try:
            log.recorded = int(payload.get("recorded", 0))
            for entry in payload.get("queries", []):
                obs = QueryObservation.from_dict(entry)
                log._queries[obs.query] = obs
            for xpath, sizes in dict(
                payload.get("view_cardinalities", {})
            ).items():
                log.view_cardinalities[str(xpath)] = {
                    str(tag): int(size) for tag, size in dict(sizes).items()
                }
        except (AttributeError, TypeError, ValueError) as exc:
            raise SelectionError(f"malformed workload log: {exc}") from exc
        return log

    def dumps(self) -> str:
        return json.dumps(self.as_dict(), indent=1, sort_keys=False)

    @classmethod
    def loads(cls, text: str) -> "WorkloadLog":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SelectionError(f"workload log is not JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise SelectionError("workload log must be a JSON object")
        return cls.from_dict(payload)

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.dumps())

    @classmethod
    def load(cls, path) -> "WorkloadLog":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.loads(handle.read())


class CalibratedStatistics:
    """Measured-first cardinalities with the estimate path as fallback.

    A drop-in for :class:`~repro.selection.estimates.DocumentStatistics`
    anywhere the selection layer costs views: the probability surface
    (``count`` / ``p_has_ancestor`` / ``p_has_descendant``) delegates to
    the underlying one-pass statistics, while
    :meth:`measured_list_size` answers exactly for every pattern whose
    materialized cardinalities were harvested (from the catalog, or
    from a recorded :class:`WorkloadLog`).
    :func:`~repro.selection.estimates.estimate_list_size` consults
    :meth:`measured_list_size` first, so existing callers need no code
    change to benefit from calibration.
    """

    def __init__(
        self,
        stats: DocumentStatistics,
        measured: Mapping[str, Mapping[str, int]] | None = None,
    ) -> None:
        self.stats = stats
        self._measured: dict[str, dict[str, int]] = {
            xpath: dict(sizes) for xpath, sizes in (measured or {}).items()
        }

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_catalog(
        cls, catalog, stats: DocumentStatistics | None = None
    ) -> "CalibratedStatistics":
        """Harvest exact list cardinalities from a catalog's views.

        Every non-derived materialized view that exposes per-tag entry
        counts (the element and linked-element schemes) contributes its
        measured ``|L_q|`` values; derived result views are skipped —
        their content is a query result, not the pattern's solution
        lists, so their counts would mis-calibrate the model.
        """
        if stats is None:
            stats = DocumentStatistics.collect(catalog.document)
        calibration = cls(stats)
        for info in catalog.views():
            if info.derived:
                continue
            counts = getattr(info.view, "entry_counts", None)
            if counts is None:
                continue
            calibration.observe(info.pattern.to_xpath(), counts())
        return calibration

    @classmethod
    def from_log(
        cls, stats: DocumentStatistics, log: WorkloadLog
    ) -> "CalibratedStatistics":
        """Calibrate from the cardinalities a recorded log carries."""
        return cls(stats, log.view_cardinalities)

    def observe(self, xpath: str, cardinalities: Mapping[str, int]) -> None:
        self._measured[xpath] = dict(cardinalities)

    # -- DocumentStatistics surface (delegated) --------------------------------

    def count(self, tag: str) -> int:
        return self.stats.count(tag)

    def p_has_ancestor(self, tag: str, ancestor_tag: str) -> float:
        return self.stats.p_has_ancestor(tag, ancestor_tag)

    def p_has_descendant(self, tag: str, descendant_tag: str) -> float:
        return self.stats.p_has_descendant(tag, descendant_tag)

    @property
    def total_nodes(self) -> int:
        return self.stats.total_nodes

    # -- calibration -----------------------------------------------------------

    @property
    def measured_views(self) -> list[str]:
        """Xpaths with measured cardinalities, in harvest order."""
        return list(self._measured)

    def measured_list_size(self, view: Pattern, tag: str) -> float | None:
        """Exact ``|L_tag|`` of ``view`` when measured, else ``None``."""
        sizes = self._measured.get(view.to_xpath())
        if sizes is None:
            return None
        size = sizes.get(tag)
        return None if size is None else float(size)

    def list_size(self, view: Pattern, tag: str) -> float:
        """Measured ``|L_tag|`` with the estimate path as fallback.

        This is the only cardinality interface service code may use
        (lint rule RL108): the measured value when the view was ever
        materialized, the independence-assumption estimate otherwise.
        """
        measured = self.measured_list_size(view, tag)
        if measured is not None:
            return measured
        return estimate_list_size(self.stats, view, tag)


def measure_view_cardinalities(
    document, view: Pattern
) -> dict[str, int]:
    """Ground-truth ``|L_q|`` per tag: the sizes materialization stores.

    Used by tests and offline tools; the service harvests the same
    numbers for free from already-materialized catalog views.
    """
    return {
        tag: len(nodes)
        for tag, nodes in solution_nodes(document, view).items()
    }


# -- adoption controller -------------------------------------------------------


@dataclass(frozen=True)
class AdoptedView:
    """One advisor-owned materialized view and its bookkeeping."""

    name: str
    xpath: str
    bytes: float
    benefit: float
    #: advisor cycle (1-based) that adopted the view.
    cycle: int

    @property
    def density(self) -> float:
        return self.benefit / max(self.bytes, 1.0)

    def as_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "xpath": self.xpath,
            "bytes": round(self.bytes, 1),
            "benefit": round(self.benefit, 1),
            "cycle": self.cycle,
        }


@dataclass(frozen=True)
class AdoptionDecision:
    """One controller decision with its justification."""

    action: str  # "adopt" | "keep" | "drop"
    xpath: str
    benefit: float
    bytes: float
    reason: str

    def as_dict(self) -> dict[str, object]:
        return {
            "action": self.action,
            "view": self.xpath,
            "benefit": round(self.benefit, 1),
            "bytes": round(self.bytes, 1),
            "reason": self.reason,
        }


@dataclass
class AdoptionPlan:
    """What one advisor cycle wants the catalog to look like."""

    adopt: list[Pattern]
    drop: list[str]  # xpaths of advisor views whose payoff decayed
    keep: list[str]
    decisions: list[AdoptionDecision]
    budget_bytes: float
    #: projected storage of the advisor view set after applying the plan
    #: (measured bytes for already-adopted survivors, estimates for new
    #: adoptions until materialization measures them).
    projected_bytes: float
    #: distinct logged patterns that drove the plan.
    demand_patterns: int
    notes: list[str] = field(default_factory=list)

    @property
    def changed(self) -> bool:
        return bool(self.adopt or self.drop)


def plan_adoption(
    log: WorkloadLog,
    stats: DocumentStatistics | CalibratedStatistics,
    budget_bytes: float,
    adopted: Mapping[str, float] | None = None,
    existing: Iterable[str] = (),
    max_view_size: int = 4,
    min_weight: float = 1.0,
) -> AdoptionPlan:
    """Deterministic budgeted adopt/keep/drop plan for the logged demand.

    Candidates are the connected subpatterns of every logged pattern
    whose decayed demand weight is at least ``min_weight``; each is
    scored by demand-weighted saving (base-view cost minus calibrated
    view cost, both through ``stats`` — measured cardinalities first
    when ``stats`` is a :class:`CalibratedStatistics`) per byte, and a
    greedy knapsack packs the budget.  Currently adopted views compete
    like any other candidate, with their *measured* bytes: a view whose
    weighted benefit no longer earns its storage — because its queries
    stopped arriving or better candidates displaced it — lands in
    ``drop``.

    Args:
        log: the recorded query stream.
        stats: document statistics, ideally calibrated.
        budget_bytes: storage budget for advisor-owned views.
        adopted: currently advisor-owned views as ``xpath -> measured
            bytes`` (insertion order preserved for determinism).
        existing: xpaths of user-registered views — excluded from
            candidacy (the advisor never duplicates or drops them).
        max_view_size: largest candidate view in nodes.
        min_weight: smallest decayed demand weight a pattern needs to
            influence the plan.
    """
    adopted = dict(adopted or {})
    excluded = set(existing)
    queries: list[Pattern] = []
    weights: dict[str, float] = {}
    for obs in log.observations():
        if obs.weight < min_weight or obs.refuted or not obs.query:
            continue
        try:
            pattern = parse_pattern(obs.query)
        except PatternParseError:  # pragma: no cover - canonical text parses
            continue
        key = pattern.name or pattern.to_xpath()
        if key not in weights:
            queries.append(pattern)
        weights[key] = weights.get(key, 0.0) + obs.weight

    notes: list[str] = []
    if not queries:
        # No demand above the floor: every advisor view has decayed out.
        decisions = [
            AdoptionDecision(
                action="drop", xpath=xpath, benefit=0.0,
                bytes=adopted[xpath],
                reason="no remaining demand for any pattern it serves",
            )
            for xpath in adopted
        ]
        return AdoptionPlan(
            adopt=[], drop=list(adopted), keep=[], decisions=decisions,
            budget_bytes=budget_bytes, projected_bytes=0.0,
            demand_patterns=0,
            notes=["log holds no pattern above the demand floor"],
        )

    advice = recommend_for_workload(
        None,
        queries,
        budget_bytes=budget_bytes,
        max_view_size=max_view_size,
        stats=stats,
        weights=weights,
        known_bytes=adopted,
        exclude={xpath for xpath in excluded if xpath not in adopted},
        # Measured-hot queries may displace the small shared views the
        # static density order admits first and earn their own exact
        # view — the wall-clock win the offline (unweighted) advisor
        # has no demand signal to justify.
        specialize=True,
    )
    notes.extend(advice.notes)

    winners: dict[str, float] = {}
    winner_bytes: dict[str, float] = {}
    for candidate in advice.chosen:
        xpath = candidate.view.to_xpath()
        winners[xpath] = candidate.total_saving
        winner_bytes[xpath] = candidate.estimated_bytes

    decisions: list[AdoptionDecision] = []
    adopt: list[Pattern] = []
    keep: list[str] = []
    drop: list[str] = []
    for candidate in advice.chosen:
        xpath = candidate.view.to_xpath()
        if xpath in adopted:
            keep.append(xpath)
            decisions.append(AdoptionDecision(
                action="keep", xpath=xpath,
                benefit=candidate.total_saving,
                bytes=adopted[xpath],
                reason="still earns its storage under current demand",
            ))
        else:
            adopt.append(candidate.view)
            decisions.append(AdoptionDecision(
                action="adopt", xpath=xpath,
                benefit=candidate.total_saving,
                bytes=candidate.estimated_bytes,
                reason="best remaining benefit density within budget",
            ))
    for xpath, size in adopted.items():
        if xpath in winners:
            continue
        drop.append(xpath)
        decisions.append(AdoptionDecision(
            action="drop", xpath=xpath, benefit=0.0, bytes=size,
            reason="observed payoff decayed below the budget's"
                   " marginal density",
        ))
    projected = sum(
        adopted.get(xpath, winner_bytes[xpath]) for xpath in winners
    )
    return AdoptionPlan(
        adopt=adopt,
        drop=drop,
        keep=keep,
        decisions=decisions,
        budget_bytes=budget_bytes,
        projected_bytes=projected,
        demand_patterns=len(queries),
        notes=notes,
    )


def rebalance_to_budget(
    adopted: Mapping[str, AdoptedView], budget_bytes: float
) -> list[str]:
    """Views to evict (lowest benefit density first) so the *measured*
    total fits the budget.

    The planner packs by estimated bytes; materialization then measures
    the truth.  When estimates undershot, this deterministic eviction
    pass restores the budget invariant.  Ties break on xpath so the
    result is stable across runs.
    """
    total = sum(view.bytes for view in adopted.values())
    if total <= budget_bytes:
        return []
    ranked = sorted(
        adopted.values(), key=lambda view: (view.density, view.xpath)
    )
    evict: list[str] = []
    for view in ranked:
        if total <= budget_bytes:
            break
        evict.append(view.xpath)
        total -= view.bytes
    return evict


__all__ = [
    "ADVISOR_PREFIX",
    "AdoptedView",
    "AdoptionDecision",
    "AdoptionPlan",
    "CalibratedStatistics",
    "Measurement",
    "QueryObservation",
    "WorkloadLog",
    "advisor_enabled",
    "advisor_view_name",
    "measure_view_cardinalities",
    "plan_adoption",
    "rebalance_to_budget",
]
