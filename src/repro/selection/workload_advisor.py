"""Workload-level view recommendation under a space budget.

A deployment materializes views for a *workload*, not one query: a view
shared by several queries amortizes its storage.  This module extends the
single-query advisor to that setting (the direction of the multi-view
selection work the paper cites as [25]):

1. candidates are the connected subpatterns of every workload query
   (deduplicated structurally — the same ``//b//c`` may serve many
   queries);
2. a candidate's benefit is the *sum of savings* over all queries it is a
   subpattern of, each computed with the Section V cost model on
   estimated list sizes;
3. a greedy knapsack picks candidates by benefit density
   (benefit / estimated bytes) under the space budget, keeping per-query
   usability tag-disjoint (a query uses a view only if it shares no tag
   with a view already assigned to that query).  With ``specialize``
   the greedy may instead *displace* assigned views on a query when the
   cost model says serving the union of their tags from the candidate
   is cheaper — how the online advisor lets a measured-hot query earn
   its own exact view instead of staying stuck with the small shared
   view that arrived first.

Per-query assignments come back with the result, ready to feed
:class:`repro.planner.Planner`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SelectionError
from repro.selection.advisor import (
    base_plan_cost,
    candidate_cost,
    enumerate_connected_subpatterns,
)
from repro.selection.estimates import DocumentStatistics, estimate_list_size
from repro.storage.records import element_codec
from repro.tpq.containment import is_subpattern
from repro.tpq.pattern import Pattern
from repro.xmltree.document import Document


@dataclass
class WorkloadCandidate:
    """A candidate view scored against the whole workload."""

    view: Pattern
    per_query_saving: dict[str, float]
    estimated_bytes: float

    @property
    def total_saving(self) -> float:
        return sum(self.per_query_saving.values())

    @property
    def density(self) -> float:
        return self.total_saving / max(self.estimated_bytes, 1.0)


@dataclass
class WorkloadAdvice:
    """Chosen views, their per-query assignments and bookkeeping."""

    chosen: list[WorkloadCandidate]
    assignments: dict[str, list[Pattern]]
    budget_bytes: float
    used_bytes: float = 0.0
    notes: list[str] = field(default_factory=list)

    @property
    def views(self) -> list[Pattern]:
        return [candidate.view for candidate in self.chosen]


def estimate_view_bytes(
    stats: DocumentStatistics, view: Pattern
) -> float:
    """Rough LE-footprint estimate: label + two pointers + child slots.

    With calibrated statistics the per-tag list sizes are measured, so
    this becomes near-exact for any view that was ever materialized.
    """
    width = element_codec().width
    total = 0.0
    for vnode in view.nodes:
        per_record = width + 4 * (2 + len(vnode.children))
        total += per_record * estimate_list_size(stats, view, vnode.tag)
    return total


def recommend_for_workload(
    document: Document | None,
    queries: list[Pattern],
    budget_bytes: float = float("inf"),
    max_view_size: int = 4,
    stats: DocumentStatistics | None = None,
    weights: dict[str, float] | None = None,
    known_bytes: dict[str, float] | None = None,
    exclude: set[str] | None = None,
    specialize: bool = False,
) -> WorkloadAdvice:
    """Pick a shared view set for ``queries`` within ``budget_bytes``.

    Args:
        document: the data tree; may be ``None`` when ``stats`` is given
            (the offline/advisor path works from statistics alone).
        queries: workload queries (each named, else keyed by xpath).
        budget_bytes: storage budget for the chosen views.
        max_view_size: largest candidate view size in nodes.
        stats: precollected (optionally calibrated) statistics.
        weights: per-query demand multipliers keyed like the query
            (name, else xpath); a query absent from the map weighs 1.
            This is how the online advisor turns observed frequency into
            benefit: a view saving 100 units for a query seen 40 times
            beats one saving 500 for a query seen once.
        known_bytes: measured storage per candidate xpath, overriding
            the byte estimate (already-materialized views are costed at
            their true footprint).
        exclude: candidate xpaths to drop from the pool (views the
            caller already has and manages outside this advice).
        specialize: allow a candidate to displace views already
            assigned to a query when the cost model says the candidate
            serves the union of their tags cheaper (views displaced
            from every query refund their storage).  Off by default:
            the offline advisor prefers the storage-lean shared set;
            the online advisor enables it so sustained hot queries can
            earn their own exact views.

    Returns:
        The advice with chosen candidates (benefit-density order) and a
        tag-disjoint per-query view assignment.
    """
    if stats is None:
        if document is None:
            raise SelectionError(
                "recommend_for_workload needs a document or statistics"
            )
        stats = DocumentStatistics.collect(document)
    weights = weights or {}
    known_bytes = known_bytes or {}
    exclude = exclude or set()

    def key_of(query: Pattern) -> str:
        return query.name or query.to_xpath()

    # 1. structurally-deduplicated candidate pool across all queries
    pool: dict[str, Pattern] = {}
    for query in queries:
        for view in enumerate_connected_subpatterns(
            query, min_size=2, max_size=max_view_size
        ):
            xpath = view.to_xpath()
            if xpath in exclude:
                continue
            pool.setdefault(xpath, view)

    # 2. per-query savings for each candidate, scaled by demand weight
    candidates: list[WorkloadCandidate] = []
    for view in pool.values():
        savings: dict[str, float] = {}
        for query in queries:
            if not is_subpattern(view, query):
                continue
            saving = base_plan_cost(
                stats, query, view.tag_set()
            ) - candidate_cost(stats, view, query)
            saving *= weights.get(key_of(query), 1.0)
            if saving > 0:
                savings[key_of(query)] = saving
        if savings:
            xpath = view.to_xpath()
            candidates.append(
                WorkloadCandidate(
                    view=view,
                    per_query_saving=savings,
                    estimated_bytes=known_bytes.get(
                        xpath, estimate_view_bytes(stats, view)
                    ),
                )
            )
    candidates.sort(key=lambda c: (-c.density, c.view.to_xpath()))

    # 3. greedy knapsack with tag-disjoint per-query assignment; with
    # ``specialize`` an assignment may also *replace* views the
    # candidate overlaps when the model prices the candidate cheaper
    # for the union of their tags.
    chosen_map: dict[str, WorkloadCandidate] = {}
    use_count: dict[str, int] = {}
    assignments: dict[str, list[Pattern]] = {
        key_of(query): [] for query in queries
    }
    query_by_key = {key_of(query): query for query in queries}
    used = 0.0
    notes: list[str] = []
    for candidate in candidates:
        xpath = candidate.view.to_xpath()
        ctags = candidate.view.tag_set()
        if used + candidate.estimated_bytes > budget_bytes:
            notes.append(f"skipped {xpath}: over budget")
            continue
        # (query, views the candidate would displace there)
        plans: list[tuple[str, list[Pattern]]] = []
        for name in candidate.per_query_saving:
            query = query_by_key[name]
            displaced = [
                view for view in assignments[name]
                if view.tag_set() & ctags
            ]
            if displaced:
                if not specialize:
                    continue
                covered: set[str] = set()
                for view in displaced:
                    covered |= view.tag_set()
                old_cost = sum(
                    candidate_cost(stats, view, query)
                    for view in displaced
                ) + base_plan_cost(stats, query, ctags - covered)
                new_cost = candidate_cost(
                    stats, candidate.view, query
                ) + base_plan_cost(stats, query, covered - ctags)
                if new_cost >= old_cost:
                    continue
            plans.append((name, displaced))
        if not plans:
            continue
        chosen_map[xpath] = candidate
        use_count[xpath] = 0
        used += candidate.estimated_bytes
        for name, displaced in plans:
            for view in displaced:
                assignments[name].remove(view)
                dxpath = view.to_xpath()
                use_count[dxpath] -= 1
                if use_count[dxpath] == 0:
                    # Displaced from every query: refund its storage.
                    used -= chosen_map.pop(dxpath).estimated_bytes
                    del use_count[dxpath]
            assignments[name].append(candidate.view)
            use_count[xpath] += 1
    return WorkloadAdvice(
        chosen=list(chosen_map.values()),
        assignments=assignments,
        budget_bytes=budget_bytes,
        used_bytes=used,
        notes=notes,
    )
