"""Workload-level view recommendation under a space budget.

A deployment materializes views for a *workload*, not one query: a view
shared by several queries amortizes its storage.  This module extends the
single-query advisor to that setting (the direction of the multi-view
selection work the paper cites as [25]):

1. candidates are the connected subpatterns of every workload query
   (deduplicated structurally — the same ``//b//c`` may serve many
   queries);
2. a candidate's benefit is the *sum of savings* over all queries it is a
   subpattern of, each computed with the Section V cost model on
   estimated list sizes;
3. a greedy knapsack picks candidates by benefit density
   (benefit / estimated bytes) under the space budget, keeping per-query
   usability tag-disjoint (a query uses a view only if it shares no tag
   with a view already assigned to that query).

Per-query assignments come back with the result, ready to feed
:class:`repro.planner.Planner`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.selection.advisor import (
    base_plan_cost,
    candidate_cost,
    enumerate_connected_subpatterns,
)
from repro.selection.estimates import DocumentStatistics, estimate_list_size
from repro.storage.records import element_codec
from repro.tpq.containment import is_subpattern
from repro.tpq.pattern import Pattern
from repro.xmltree.document import Document


@dataclass
class WorkloadCandidate:
    """A candidate view scored against the whole workload."""

    view: Pattern
    per_query_saving: dict[str, float]
    estimated_bytes: float

    @property
    def total_saving(self) -> float:
        return sum(self.per_query_saving.values())

    @property
    def density(self) -> float:
        return self.total_saving / max(self.estimated_bytes, 1.0)


@dataclass
class WorkloadAdvice:
    """Chosen views, their per-query assignments and bookkeeping."""

    chosen: list[WorkloadCandidate]
    assignments: dict[str, list[Pattern]]
    budget_bytes: float
    used_bytes: float = 0.0
    notes: list[str] = field(default_factory=list)

    @property
    def views(self) -> list[Pattern]:
        return [candidate.view for candidate in self.chosen]


def _estimate_view_bytes(
    stats: DocumentStatistics, view: Pattern
) -> float:
    """Rough LE-footprint estimate: label + two pointers + child slots."""
    width = element_codec().width
    total = 0.0
    for vnode in view.nodes:
        per_record = width + 4 * (2 + len(vnode.children))
        total += per_record * estimate_list_size(stats, view, vnode.tag)
    return total


def recommend_for_workload(
    document: Document,
    queries: list[Pattern],
    budget_bytes: float = float("inf"),
    max_view_size: int = 4,
    stats: DocumentStatistics | None = None,
) -> WorkloadAdvice:
    """Pick a shared view set for ``queries`` within ``budget_bytes``.

    Args:
        document: the data tree.
        queries: workload queries (each named, else keyed by xpath).
        budget_bytes: storage budget for the chosen views.
        max_view_size: largest candidate view size in nodes.
        stats: precollected document statistics.

    Returns:
        The advice with chosen candidates (benefit-density order) and a
        tag-disjoint per-query view assignment.
    """
    if stats is None:
        stats = DocumentStatistics.collect(document)

    def key_of(query: Pattern) -> str:
        return query.name or query.to_xpath()

    # 1. structurally-deduplicated candidate pool across all queries
    pool: dict[str, Pattern] = {}
    for query in queries:
        for view in enumerate_connected_subpatterns(
            query, min_size=2, max_size=max_view_size
        ):
            pool.setdefault(view.to_xpath(), view)

    # 2. per-query savings for each candidate
    candidates: list[WorkloadCandidate] = []
    for view in pool.values():
        savings: dict[str, float] = {}
        for query in queries:
            if not is_subpattern(view, query):
                continue
            saving = base_plan_cost(
                stats, query, view.tag_set()
            ) - candidate_cost(stats, view, query)
            if saving > 0:
                savings[key_of(query)] = saving
        if savings:
            candidates.append(
                WorkloadCandidate(
                    view=view,
                    per_query_saving=savings,
                    estimated_bytes=_estimate_view_bytes(stats, view),
                )
            )
    candidates.sort(key=lambda c: -c.density)

    # 3. greedy knapsack with tag-disjoint per-query assignment
    chosen: list[WorkloadCandidate] = []
    assignments: dict[str, list[Pattern]] = {
        key_of(query): [] for query in queries
    }
    assigned_tags: dict[str, set[str]] = {
        key_of(query): set() for query in queries
    }
    used = 0.0
    notes: list[str] = []
    for candidate in candidates:
        if used + candidate.estimated_bytes > budget_bytes:
            notes.append(
                f"skipped {candidate.view.to_xpath()}: over budget"
            )
            continue
        usable_for = [
            name
            for name in candidate.per_query_saving
            if not assigned_tags[name] & candidate.view.tag_set()
        ]
        if not usable_for:
            continue
        chosen.append(candidate)
        used += candidate.estimated_bytes
        for name in usable_for:
            assignments[name].append(candidate.view)
            assigned_tags[name] |= candidate.view.tag_set()
    return WorkloadAdvice(
        chosen=chosen,
        assignments=assignments,
        budget_bytes=budget_bytes,
        used_bytes=used,
        notes=notes,
    )
