"""View recommendation: which views are worth materializing for a query?

Section V selects among *given* materialized views.  The complementary
question a deployment faces first — which views to materialize at all —
is answered here with the same cost model:

1. enumerate the connected subpatterns of the query up to a size bound
   (every one is a valid candidate view whose joins ViewJoin can reuse);
2. score each candidate by its estimated *saving*: evaluating its tags
   from base (single-tag) views costs ``sum |L_t| * e_t`` with full tag
   counts and no precomputed joins, while the candidate costs
   ``c(v, Q)`` on its (smaller) estimated solution lists;
3. greedily pick a tag-disjoint set of candidates by saving, leaving the
   uncovered tags to base views.

Only one pass of document statistics is needed
(:class:`repro.selection.estimates.DocumentStatistics`) — no candidate is
materialized while advising.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.selection.cost import residual_edges
from repro.selection.estimates import (
    DocumentStatistics,
    estimate_list_size,
)
from repro.tpq.pattern import Pattern, PatternNode
from repro.xmltree.document import Document


@dataclass
class Recommendation:
    """One scored candidate view."""

    view: Pattern
    estimated_cost: float
    base_cost: float

    @property
    def saving(self) -> float:
        return self.base_cost - self.estimated_cost


@dataclass
class AdvisorResult:
    """Ranked candidates plus the greedy disjoint pick."""

    candidates: list[Recommendation]
    recommended: list[Pattern]
    uncovered: list[str]
    total_saving: float = 0.0
    notes: list[str] = field(default_factory=list)


def enumerate_connected_subpatterns(
    query: Pattern, min_size: int = 2, max_size: int = 5
) -> list[Pattern]:
    """All connected subpatterns of ``query`` within the size bounds.

    A connected subpattern is a connected subtree of the query that keeps
    the query's own edges/axes (Section II) — exactly the views whose
    joins are fully reusable by ViewJoin segments.
    """
    results: list[Pattern] = []

    def grow(root: PatternNode, chosen: set[str], frontier: list[PatternNode]):
        if min_size <= len(chosen) <= max_size:
            results.append(_project(root, chosen))
        if len(chosen) >= max_size or not frontier:
            return
        # Branch on the first frontier node: include it (expanding the
        # frontier with its children) or exclude it permanently.
        head, *rest = frontier
        grow(root, chosen | {head.tag}, rest + list(head.children))
        grow(root, chosen, rest)

    for qnode in query.nodes:
        grow(qnode, {qnode.tag}, list(qnode.children))
    # Deduplicate structurally (different grow orders reach the same set).
    unique: dict[str, Pattern] = {}
    for pattern in results:
        unique.setdefault(pattern.to_xpath(), pattern)
    return list(unique.values())


def _project(root: PatternNode, chosen: set[str]) -> Pattern:
    from repro.tpq.pattern import Axis

    def clone(qnode: PatternNode) -> PatternNode:
        # A standalone view anchors its root with the descendant axis
        # (//root...), whatever the root's incoming axis was in the query.
        axis = Axis.DESCENDANT if qnode is root else qnode.axis
        copy = PatternNode(qnode.tag, axis)
        for child in qnode.children:
            if child.tag in chosen:
                copy.add_child(clone(child))
        return copy

    return Pattern(clone(root))


def base_plan_cost(stats: DocumentStatistics, query: Pattern,
                   tags: set[str]) -> float:
    """Cost of serving ``tags`` from base views: full tag counts, every
    incident edge evaluated at query time."""
    total = 0.0
    for tag in tags:
        qnode = query.node(tag)
        degree = len(qnode.children) + (0 if qnode.parent is None else 1)
        total += stats.count(tag) * max(degree, 1)
    return total


def candidate_cost(stats: DocumentStatistics, view: Pattern,
                   query: Pattern) -> float:
    """``c(v, Q)`` at lambda=1 on estimated solution-list sizes, plus a
    residual-free floor of one pass over the lists (reading is never free)."""
    total = 0.0
    for vnode in view.nodes:
        size = estimate_list_size(stats, view, vnode.tag)
        edges = residual_edges(view, query, vnode.tag)
        total += size * max(edges, 1)
    return total


def recommend_views(
    document: Document,
    query: Pattern,
    max_view_size: int = 5,
    max_recommendations: int | None = None,
    stats: DocumentStatistics | None = None,
) -> AdvisorResult:
    """Recommend a tag-disjoint set of views to materialize for ``query``.

    Args:
        document: the data tree (statistics are collected once).
        query: the query to optimize for.
        max_view_size: largest candidate view (paper's views have <= 5
            nodes; larger views reuse more but generalize to fewer queries).
        max_recommendations: cap on the number of picked views.
        stats: precollected statistics (collected here when omitted).
    """
    if stats is None:
        stats = DocumentStatistics.collect(document)
    candidates = []
    for view in enumerate_connected_subpatterns(
        query, min_size=2, max_size=max_view_size
    ):
        estimated = candidate_cost(stats, view, query)
        base = base_plan_cost(stats, query, view.tag_set())
        candidates.append(
            Recommendation(view=view, estimated_cost=estimated,
                           base_cost=base)
        )
    candidates.sort(key=lambda rec: -rec.saving)

    recommended: list[Pattern] = []
    covered: set[str] = set()
    total_saving = 0.0
    notes: list[str] = []
    for rec in candidates:
        if rec.saving <= 0:
            notes.append(
                f"stopped at {rec.view.to_xpath()}: no further positive"
                " savings"
            )
            break
        if covered & rec.view.tag_set():
            continue
        recommended.append(rec.view)
        covered |= rec.view.tag_set()
        total_saving += rec.saving
        if (
            max_recommendations is not None
            and len(recommended) >= max_recommendations
        ):
            notes.append("recommendation cap reached")
            break
    uncovered = [tag for tag in query.tags() if tag not in covered]
    return AdvisorResult(
        candidates=candidates,
        recommended=recommended,
        uncovered=uncovered,
        total_saving=total_saving,
        notes=notes,
    )
