"""Evaluation cost model for ViewJoin (paper Section V).

For a query ``Q`` and a candidate view ``v`` (a subpattern of ``Q``)::

    c(v, Q) = (1 - lambda) * sum_q |L_q|  +  lambda * sum_q |L_q| * e_q

where the sums range over the query nodes covered by ``v``, ``|L_q|`` is
the size of the view's q-type list, and ``e_q`` is the number of edges of
``q`` in ``Q`` that are *not* present in ``v`` (the joins left to compute —
the interleaving conditions).  The first term models the I/O of reading the
view; the second the CPU cost of the residual structural joins.

The paper observes query evaluation is CPU-bound and fixes ``lambda = 1``;
the ablation benchmark sweeps it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SelectionError
from repro.tpq.containment import is_subpattern
from repro.tpq.matching import solution_nodes
from repro.tpq.pattern import Pattern, PatternNode
from repro.xmltree.document import Document


@dataclass
class ViewCost:
    """Cost breakdown of evaluating a query with one view."""

    view: Pattern
    io_term: float
    cpu_term: float
    lam: float

    @property
    def total(self) -> float:
        return (1.0 - self.lam) * self.io_term + self.lam * self.cpu_term


def residual_edges(view: Pattern, query: Pattern, tag: str) -> int:
    """``e_q``: edges of query node ``tag`` in Q that are not edges of ``v``.

    An edge of Q incident to ``tag`` is "present in v" when both endpoints
    belong to ``v`` and they are adjacent in ``v`` as well (the join is
    precomputed); every other incident Q-edge must be evaluated at query
    time and charges ``|L_q|`` comparisons.
    """
    qnode = query.node(tag)
    count = 0
    for neighbour in _neighbours(qnode):
        if not view.has_tag(neighbour.tag):
            count += 1
            continue
        vnode = view.node(tag)
        vparent = vnode.parent.tag if vnode.parent is not None else None
        vchildren = {child.tag for child in vnode.children}
        if neighbour.tag != vparent and neighbour.tag not in vchildren:
            count += 1
    return count


def _neighbours(qnode: PatternNode) -> list[PatternNode]:
    result = list(qnode.children)
    if qnode.parent is not None:
        result.append(qnode.parent)
    return result


def view_cost(
    document: Document,
    view: Pattern,
    query: Pattern,
    lam: float = 1.0,
    list_sizes: dict[str, int] | None = None,
) -> ViewCost:
    """Compute ``c(v, Q)`` against a document (or precomputed list sizes).

    Args:
        document: the data tree (sizes of the materialized lists come from
            the view's solution nodes on it).
        view: candidate view; must be a subpattern of ``query``.
        query: the query.
        lam: the weight parameter (paper default 1.0 — CPU-bound).
        list_sizes: optional precomputed ``|L_q|`` map to avoid
            re-materializing when costing many views.

    Raises:
        SelectionError: if ``view`` is not a subpattern of ``query`` or
            ``lam`` is outside [0, 1].
    """
    if not 0.0 <= lam <= 1.0:
        raise SelectionError(f"lambda must be in [0, 1], got {lam}")
    if not is_subpattern(view, query):
        raise SelectionError(
            f"view {view.to_xpath()} is not a subpattern of {query.to_xpath()}"
            " and cannot be used to answer it"
        )
    if list_sizes is None:
        lists = solution_nodes(document, view)
        list_sizes = {tag: len(nodes) for tag, nodes in lists.items()}
    io_term = 0.0
    cpu_term = 0.0
    for vnode in view.nodes:
        tag = vnode.tag
        if not query.has_tag(tag):
            continue
        size = list_sizes.get(tag, 0)
        io_term += size
        cpu_term += size * residual_edges(view, query, tag)
    return ViewCost(view=view, io_term=io_term, cpu_term=cpu_term, lam=lam)
