"""View selection (paper Section V): cost model, statistics-based
estimates and the greedy heuristic."""

from repro.selection.advisor import (
    AdvisorResult,
    Recommendation,
    enumerate_connected_subpatterns,
    recommend_views,
)
from repro.selection.cost import ViewCost, residual_edges, view_cost
from repro.selection.estimates import (
    DocumentStatistics,
    estimate_list_size,
    estimate_view_cost,
    select_views_estimated,
)
from repro.selection.greedy import SelectionResult, select_views
from repro.selection.online import (
    ADVISOR_PREFIX,
    AdoptedView,
    AdoptionDecision,
    AdoptionPlan,
    CalibratedStatistics,
    Measurement,
    QueryObservation,
    WorkloadLog,
    advisor_enabled,
    advisor_view_name,
    measure_view_cardinalities,
    plan_adoption,
    rebalance_to_budget,
)
from repro.selection.workload_advisor import (
    WorkloadAdvice,
    WorkloadCandidate,
    estimate_view_bytes,
    recommend_for_workload,
)

__all__ = [
    "AdvisorResult",
    "Recommendation",
    "enumerate_connected_subpatterns",
    "recommend_views",
    "ViewCost",
    "residual_edges",
    "view_cost",
    "DocumentStatistics",
    "estimate_list_size",
    "estimate_view_cost",
    "select_views_estimated",
    "SelectionResult",
    "select_views",
    "WorkloadAdvice",
    "WorkloadCandidate",
    "estimate_view_bytes",
    "recommend_for_workload",
    "ADVISOR_PREFIX",
    "AdoptedView",
    "AdoptionDecision",
    "AdoptionPlan",
    "CalibratedStatistics",
    "Measurement",
    "QueryObservation",
    "WorkloadLog",
    "advisor_enabled",
    "advisor_view_name",
    "measure_view_cardinalities",
    "plan_adoption",
    "rebalance_to_budget",
]
