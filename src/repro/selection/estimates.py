"""Statistics-based cardinality estimation for view selection.

The Section V cost model needs the materialized list sizes ``|L_q|`` of
every candidate view.  Materializing each candidate just to cost it is
wasteful when the candidate pool is large, so this module estimates the
sizes from one-pass document statistics — the classic System-R style
independence assumption applied to structural predicates:

    |L_q| ~= count(tag) * prod P(has alpha-ancestor)   for view ancestors
                        * prod P(has delta-descendant) for subtree tags

The statistics themselves are exact (computed in one ancestor-walk pass):
per-tag node counts, the number of ``t``-nodes with at least one
``a``-tagged ancestor, and the number of ``a``-nodes with at least one
``t``-tagged descendant.  Only the independence combination is
approximate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SelectionError
from repro.selection.cost import ViewCost, residual_edges
from repro.tpq.containment import is_subpattern
from repro.tpq.pattern import Pattern, PatternNode
from repro.xmltree.document import Document


@dataclass
class DocumentStatistics:
    """One-pass structural statistics of a document.

    Attributes:
        tag_counts: nodes per tag.
        with_ancestor: ``(tag, ancestor_tag) ->`` number of ``tag``-nodes
            having at least one ``ancestor_tag`` proper ancestor.
        with_descendant: ``(tag, descendant_tag) ->`` number of
            ``tag``-nodes having at least one ``descendant_tag`` proper
            descendant.
        total_nodes: document size.
    """

    tag_counts: dict[str, int] = field(default_factory=dict)
    with_ancestor: dict[tuple[str, str], int] = field(default_factory=dict)
    with_descendant: dict[tuple[str, str], int] = field(default_factory=dict)
    total_nodes: int = 0

    @classmethod
    def collect(cls, document: Document) -> "DocumentStatistics":
        """Gather the statistics in one ancestor-walk over the document."""
        stats = cls(total_nodes=len(document))
        seen_desc: set[tuple[int, str]] = set()
        for node in document:
            stats.tag_counts[node.tag] = stats.tag_counts.get(node.tag, 0) + 1
            ancestor_tags: set[str] = set()
            ancestor = document.parent(node)
            while ancestor is not None:
                ancestor_tags.add(ancestor.tag)
                key = (ancestor.index, node.tag)
                if key not in seen_desc:
                    seen_desc.add(key)
                    pair = (ancestor.tag, node.tag)
                    stats.with_descendant[pair] = (
                        stats.with_descendant.get(pair, 0) + 1
                    )
                ancestor = document.parent(ancestor)
            for tag in ancestor_tags:
                pair = (node.tag, tag)
                stats.with_ancestor[pair] = (
                    stats.with_ancestor.get(pair, 0) + 1
                )
        return stats

    # -- probabilities ---------------------------------------------------------

    def count(self, tag: str) -> int:
        return self.tag_counts.get(tag, 0)

    def p_has_ancestor(self, tag: str, ancestor_tag: str) -> float:
        total = self.count(tag)
        if total == 0:
            return 0.0
        return self.with_ancestor.get((tag, ancestor_tag), 0) / total

    def p_has_descendant(self, tag: str, descendant_tag: str) -> float:
        total = self.count(tag)
        if total == 0:
            return 0.0
        return self.with_descendant.get((tag, descendant_tag), 0) / total


def estimate_list_size(
    stats: DocumentStatistics, view: Pattern, tag: str
) -> float:
    """Estimated ``|L_tag|`` of ``view``'s materialization.

    A node survives into the view's solution lists iff it has matching
    partners along every view edge above and below it; the factors are
    combined under independence.

    When ``stats`` carries measured cardinalities (a
    :class:`~repro.selection.online.CalibratedStatistics`), the measured
    exact value is returned instead and the independence estimate only
    serves patterns that were never materialized — which upgrades every
    existing selection entry point to calibrated costs without touching
    its callers.
    """
    measured = getattr(stats, "measured_list_size", None)
    if measured is not None:
        size = measured(view, tag)
        if size is not None:
            return size
        stats = stats.stats
    qnode = view.node(tag)
    estimate = float(stats.count(tag))
    ancestor = qnode.parent
    while ancestor is not None:
        estimate *= stats.p_has_ancestor(tag, ancestor.tag)
        ancestor = ancestor.parent
    for below in _proper_subtree(qnode):
        estimate *= stats.p_has_descendant(tag, below.tag)
    return estimate


def _proper_subtree(qnode: PatternNode):
    for node in qnode.iter_subtree():
        if node is not qnode:
            yield node


def estimate_view_cost(
    stats: DocumentStatistics,
    view: Pattern,
    query: Pattern,
    lam: float = 1.0,
) -> ViewCost:
    """The Section V cost ``c(v, Q)`` using estimated list sizes."""
    if not 0.0 <= lam <= 1.0:
        raise SelectionError(f"lambda must be in [0, 1], got {lam}")
    if not is_subpattern(view, query):
        raise SelectionError(
            f"view {view.to_xpath()} is not a subpattern of {query.to_xpath()}"
        )
    io_term = 0.0
    cpu_term = 0.0
    for vnode in view.nodes:
        if not query.has_tag(vnode.tag):
            continue
        size = estimate_list_size(stats, view, vnode.tag)
        io_term += size
        cpu_term += size * residual_edges(view, query, vnode.tag)
    return ViewCost(view=view, io_term=io_term, cpu_term=cpu_term, lam=lam)


def select_views_estimated(
    stats: DocumentStatistics,
    candidates: list[Pattern],
    query: Pattern,
    lam: float = 1.0,
    require_complete: bool = False,
):
    """Greedy selection (Section V) driven by estimated costs.

    Same procedure as :func:`repro.selection.greedy.select_views` but costs
    come from :func:`estimate_view_cost`, so no candidate is materialized.
    """
    from repro.selection.greedy import SelectionResult, _key

    usable: list[Pattern] = []
    costs: dict[str, ViewCost] = {}
    for view in candidates:
        if not is_subpattern(view, query):
            continue
        costs[_key(view)] = estimate_view_cost(stats, view, query, lam=lam)
        usable.append(view)

    query_tags = query.tag_set()
    covered: set[str] = set()
    selected: list[Pattern] = []
    trace: list[tuple[str, float]] = []
    remaining = list(usable)
    while covered != query_tags and remaining:
        best: Pattern | None = None
        best_benefit = 0.0
        for view in remaining:
            newly = (view.tag_set() & query_tags) - covered
            if not newly:
                continue
            cost = costs[_key(view)].total
            benefit = len(newly) / cost if cost > 0 else float("inf")
            if best is None or benefit > best_benefit:
                best, best_benefit = view, benefit
        if best is None:
            break
        selected.append(best)
        covered |= best.tag_set() & query_tags
        remaining = [view for view in remaining if view is not best]
        trace.append((_key(best), best_benefit))

    complete = covered == query_tags
    if require_complete and not complete:
        raise SelectionError(
            f"candidates cannot answer the query; uncovered:"
            f" {sorted(query_tags - covered)}"
        )
    return SelectionResult(
        selected=selected,
        costs=costs,
        covered=covered,
        complete=complete,
        trace=trace,
    )
