"""The asyncio serving front end over :class:`~repro.service.QueryService`.

A deliberately small HTTP/1.1 server on stdlib ``asyncio.start_server``
(no third-party frameworks — the container pins its dependency set) that
turns the service's preemptible quantum API into a paginated wire
protocol:

* ``POST /query``  — body ``{"query": "//a[//b]//c"}``; runs the first
  quantum under the configured budget and answers with the page plus an
  opaque continuation ``token`` when suspended.  ``"stream": true``
  instead answers NDJSON, one line per quantum, driving the resume loop
  server-side.
* ``GET /next?token=…`` — resumes a suspended query for one quantum.
* ``GET /metrics`` / ``GET /health`` — operator surface, including the
  service's continuation and resilience counters.

Quanta execute on a **single-thread** executor: :class:`QueryService` is
not thread-safe, so one lane serializes all engine work — and because
each unit of work is one *bounded* quantum, the lane is round-robin fair
across concurrent clients instead of head-of-line blocked behind a heavy
query (``scripts/bench_serve.py`` measures exactly this).

Load shedding is wired to the PR 5 circuit breaker: the effective
concurrency limit halves per quarantined view, so a store that is
actively losing views sheds traffic (``429`` + ``Retry-After``) before
it melts.  ``drain()`` stops admissions (``503``), lets in-flight quanta
finish within a grace period, then closes the listener.

This package lives *outside* the engine's determinism boundary
(``repro.lint`` RL103 covers ``algorithms/``, ``service/``,
``storage/``): wall-clock reads here are free, while the quantum budget
the server hands the engine remains the only clock the engine sees.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from urllib.parse import parse_qs, urlsplit

from repro.algorithms.preempt import QuantumBudget
from repro.errors import (
    ContinuationExpired,
    ContinuationMalformed,
    ReproError,
    ServiceError,
)
from repro.server.quota import TenantQuotas
from repro.service import QuantumOutcome, QueryService

_MAX_REQUEST_BYTES = 1 << 20
_SERVER_NAME = "viewjoin-serve"


@dataclass(frozen=True)
class ServerConfig:
    """Tunables for :class:`ViewJoinServer`.

    ``quantum_ms``/``quantum_steps``/``quantum_matches`` compose into the
    :class:`QuantumBudget` every request runs under (0 disables that
    axis; all-zero disables preemption and queries run to completion).
    ``tenant_rate`` ≤ 0 disables quotas.
    """

    host: str = "127.0.0.1"
    port: int = 8399
    quantum_ms: float = 50.0
    quantum_steps: int = 0
    quantum_matches: int = 1024
    max_inflight: int = 8
    tenant_rate: float = 0.0
    tenant_burst: int = 20
    drain_grace_s: float = 5.0

    def budget(self) -> QuantumBudget | None:
        max_seconds = self.quantum_ms / 1000.0 if self.quantum_ms > 0 else None
        max_steps = self.quantum_steps if self.quantum_steps > 0 else None
        max_matches = (
            self.quantum_matches if self.quantum_matches > 0 else None
        )
        if max_seconds is None and max_steps is None and max_matches is None:
            return None
        return QuantumBudget(
            max_steps=max_steps, max_seconds=max_seconds,
            max_matches=max_matches,
        )


class ViewJoinServer:
    """Serve one :class:`QueryService` over HTTP.

    The server borrows the service (it does not own or close it); callers
    create both and tie their lifetimes, as ``viewjoin serve`` does.
    """

    def __init__(self, service: QueryService, config: ServerConfig | None = None):
        self.service = service
        self.config = config or ServerConfig()
        self.quotas = TenantQuotas(
            self.config.tenant_rate, self.config.tenant_burst
        )
        self._budget = self.config.budget()
        self._server: asyncio.base_events.Server | None = None
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="vj-quantum"
        )
        self._inflight = 0
        self._draining = False
        self._idle = asyncio.Event()
        self._idle.set()
        self.requests = 0
        self.shed_quota = 0
        self.shed_concurrency = 0
        self.shed_draining = 0
        self.responses: dict[int, int] = {}

    # -- lifecycle -------------------------------------------------------------

    @property
    def port(self) -> int:
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.config.host, self.config.port
        )

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def drain(self) -> None:
        """Graceful shutdown: shed new work, finish in-flight quanta.

        New requests observe ``503`` the moment draining starts; quanta
        already running get ``drain_grace_s`` to finish before the
        listener closes regardless.
        """
        self._draining = True
        try:
            await asyncio.wait_for(
                self._idle.wait(), timeout=self.config.drain_grace_s
            )
        except asyncio.TimeoutError:
            pass
        await self.aclose()

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._executor.shutdown(wait=False)

    # -- request plumbing ------------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, target, headers, body = request
            self.requests += 1
            await self._route(writer, method, target, headers, body)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except Exception as exc:  # repro-lint: disable=RL105 (last-resort 500 guard: a request handler bug must answer 500, never kill the accept loop)
            try:
                await self._send_json(
                    writer, 500, {"error": f"internal error: {exc}"}
                )
            except ConnectionError:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except ConnectionError:
                pass

    @staticmethod
    async def _read_request(reader: asyncio.StreamReader):
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            return None
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3:
            return None
        method, target, _version = parts
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if ":" in line:
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length < 0 or length > _MAX_REQUEST_BYTES:
            return None
        body = await reader.readexactly(length) if length else b""
        return method.upper(), target, headers, body

    async def _route(self, writer, method, target, headers, body) -> None:
        url = urlsplit(target)
        path = url.path
        if method == "GET" and path == "/health":
            await self._send_json(writer, 200, self._health())
            return
        if method == "GET" and path == "/metrics":
            await self._send_json(writer, 200, self.metrics())
            return
        if self._draining:
            self.shed_draining += 1
            await self._send_json(
                writer, 503, {"error": "draining"}, {"Retry-After": "1"}
            )
            return
        tenant = headers.get("x-tenant", "public")
        retry_after = self.quotas.check(tenant)
        if retry_after:
            self.shed_quota += 1
            await self._send_json(
                writer, 429,
                {"error": f"tenant {tenant!r} over quota"},
                {"Retry-After": str(int(retry_after))},
            )
            return
        if method == "POST" and path == "/query":
            await self._handle_query(writer, body)
            return
        if method == "GET" and path == "/next":
            token = parse_qs(url.query).get("token", [""])[0]
            await self._handle_next(writer, token)
            return
        await self._send_json(
            writer, 404, {"error": f"no route {method} {path}"}
        )

    # -- routes ----------------------------------------------------------------

    async def _handle_query(self, writer, body: bytes) -> None:
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
            if not isinstance(payload, dict):
                raise ServiceError("body must be a JSON object")
            query = payload.get("query")
            if not isinstance(query, str) or not query:
                raise ServiceError("body must carry a non-empty 'query'")
            mode = payload.get("mode", "memory")
            stream = bool(payload.get("stream", False))
        except (ValueError, UnicodeDecodeError, ServiceError) as exc:
            await self._send_json(writer, 400, {"error": str(exc)})
            return
        if not self._admit():
            await self._send_json(
                writer, 429,
                {"error": "server at concurrency limit"},
                {"Retry-After": "1"},
            )
            return
        try:
            if stream:
                await self._stream_query(writer, query, mode)
                return
            outcome = await self._run_quantum(
                lambda: self.service.evaluate_quantum(
                    query, mode=mode, budget=self._budget
                )
            )
        except ReproError as exc:
            await self._send_json(writer, 400, {"error": str(exc)})
            return
        finally:
            self._release()
        await self._send_json(writer, 200, outcome_payload(outcome))

    async def _handle_next(self, writer, token: str) -> None:
        if not token:
            await self._send_json(
                writer, 400, {"error": "missing token query parameter"}
            )
            return
        if not self._admit():
            await self._send_json(
                writer, 429,
                {"error": "server at concurrency limit"},
                {"Retry-After": "1"},
            )
            return
        try:
            outcome = await self._run_quantum(
                lambda: self.service.resume_quantum(token)
            )
        except ContinuationMalformed as exc:
            await self._send_json(writer, 400, {"error": str(exc)})
            return
        except ContinuationExpired as exc:
            await self._send_json(writer, 410, {"error": str(exc)})
            return
        except ReproError as exc:
            await self._send_json(writer, 400, {"error": str(exc)})
            return
        finally:
            self._release()
        await self._send_json(writer, 200, outcome_payload(outcome))

    async def _stream_query(self, writer, query: str, mode) -> None:
        """NDJSON: one line per quantum, resumed server-side.

        The concurrency slot is held for the whole chain, but the
        single-lane executor interleaves other clients' quanta between
        this chain's — streaming a heavy query does not block light
        ones.
        """
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()
        try:
            outcome = await self._run_quantum(
                lambda: self.service.evaluate_quantum(
                    query, mode=mode, budget=self._budget
                )
            )
            while True:
                line = dict(outcome_payload(outcome))
                line.pop("token", None)  # server-driven: token stays here
                writer.write(
                    json.dumps(line, separators=(",", ":")).encode() + b"\n"
                )
                await writer.drain()
                if outcome.done:
                    break
                outcome = await self._run_quantum(
                    lambda tok=outcome.token: self.service.resume_quantum(tok)
                )
        except ReproError as exc:
            writer.write(
                json.dumps({"error": str(exc)}).encode() + b"\n"
            )
            await writer.drain()

    # -- shedding / metrics ----------------------------------------------------

    def _effective_limit(self) -> int:
        """Concurrency limit, halved per quarantined view (min 1).

        The breaker quarantining views means the store is degrading;
        shrinking admission sheds load while degraded reruns are
        rebuilding answers from base views.
        """
        quarantined = len(self.service.breaker.quarantined)
        return max(1, self.config.max_inflight >> min(quarantined, 4))

    def _admit(self) -> bool:
        if self._inflight >= self._effective_limit():
            self.shed_concurrency += 1
            return False
        self._inflight += 1
        self._idle.clear()
        return True

    def _release(self) -> None:
        self._inflight = max(0, self._inflight - 1)
        if self._inflight == 0:
            self._idle.set()

    async def _run_quantum(self, call):
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._executor, call)

    def _health(self) -> dict:
        return {
            "status": "draining" if self._draining else "ok",
            "inflight": self._inflight,
            "effective_limit": self._effective_limit(),
            "quarantined_views": list(self.service.breaker.quarantined),
        }

    def metrics(self) -> dict:
        return {
            "server": {
                "requests": self.requests,
                "inflight": self._inflight,
                "effective_limit": self._effective_limit(),
                "max_inflight": self.config.max_inflight,
                "draining": self._draining,
                "shed_quota": self.shed_quota,
                "shed_concurrency": self.shed_concurrency,
                "shed_draining": self.shed_draining,
                "responses": dict(self.responses),
            },
            "quotas": self.quotas.metrics(),
            "continuations": self.service.continuation_metrics(),
            "resilience": self.service.resilience_metrics(),
            # MVCC (DESIGN.md §16): the generation new reads run
            # against (pinned-snapshot counts live in "resilience").
            "generation": {"current": self.service.generation},
        }

    async def _send_json(
        self, writer, status: int, payload: dict,
        extra_headers: dict[str, str] | None = None,
    ) -> None:
        self.responses[status] = self.responses.get(status, 0) + 1
        body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        reason = {
            200: "OK", 400: "Bad Request", 404: "Not Found",
            410: "Gone", 429: "Too Many Requests",
            500: "Internal Server Error", 503: "Service Unavailable",
        }.get(status, "OK")
        head = [
            f"HTTP/1.1 {status} {reason}",
            f"Server: {_SERVER_NAME}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        for name, value in (extra_headers or {}).items():
            head.append(f"{name}: {value}")
        writer.write("\r\n".join(head).encode("latin-1") + b"\r\n\r\n" + body)
        await writer.drain()


def outcome_payload(outcome: QuantumOutcome) -> dict:
    """The wire shape of one quantum (also NDJSON's per-line shape)."""
    return {
        "query": outcome.query,
        "combo": outcome.combo,
        "page": [list(key) for key in outcome.page],
        "match_count": outcome.match_count,
        "done": outcome.done,
        "token": outcome.token,
        "quanta": outcome.quanta,
        "preempted": outcome.preempted,
        "preemptible": outcome.preemptible,
        "degraded": outcome.degraded,
        "refuted": outcome.refuted,
        "error": outcome.error,
        "elapsed_s": outcome.elapsed_s,
        "counters": outcome.counters.as_dict(),
        "io": {
            "logical_reads": outcome.io.logical_reads,
            "physical_reads": outcome.io.physical_reads,
            "pages_written": outcome.io.pages_written,
        },
        "plan_views": list(outcome.plan_views),
    }


class BackgroundServer:
    """Run a :class:`ViewJoinServer` on a daemon thread with its own loop.

    The harness tests, the smoke script and the benchmark all need a live
    HTTP endpoint next to a plain blocking client; this wraps the
    start/serve/drain dance::

        with BackgroundServer(service, config) as bg:
            conn = http.client.HTTPConnection("127.0.0.1", bg.port)
    """

    def __init__(self, service: QueryService, config: ServerConfig | None = None):
        self.server = ViewJoinServer(service, config)
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="vj-serve", daemon=True
        )
        self._started = False

    @property
    def port(self) -> int:
        return self.server.port

    def __enter__(self) -> "BackgroundServer":
        self._thread.start()
        asyncio.run_coroutine_threadsafe(
            self.server.start(), self._loop
        ).result(timeout=10)
        self._started = True
        return self

    def submit(self, coro):
        """Run a coroutine on the server loop, blocking for its result."""
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result(
            timeout=30
        )

    def drain(self) -> None:
        self.submit(self.server.drain())

    def __exit__(self, *exc) -> None:
        if self._started:
            try:
                self.submit(self.server.aclose())
            except Exception:  # repro-lint: disable=RL105 (best-effort teardown: the loop is stopped and joined below regardless of how aclose fails)
                pass
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)
        # run_forever has returned; close() releases the loop's resources.
        self._loop.close()
