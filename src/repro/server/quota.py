"""Per-tenant admission control for the serving front end.

A classic token bucket per tenant: ``rate`` tokens/second refill up to
``burst``; each admitted request spends one token.  When the bucket is
dry the caller learns *how long* until the next token — the server turns
that into a ``429`` with an honest ``Retry-After`` header instead of a
blind "try later".

The bucket lives in :mod:`repro.server`, outside the engine's
determinism boundary, so it reads the real monotonic clock; tests inject
a fake clock instead.
"""

from __future__ import annotations

import math
import time
from typing import Callable

from repro.errors import ServiceError


class TokenBucket:
    """One tenant's budget: ``rate`` requests/second, ``burst`` capacity."""

    def __init__(
        self,
        rate: float,
        burst: int,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rate <= 0:
            raise ServiceError("token bucket rate must be positive")
        if burst < 1:
            raise ServiceError("token bucket burst must be at least 1")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._stamp = clock()

    def try_acquire(self) -> float:
        """Spend one token if available.

        Returns ``0.0`` on admission, else the seconds until a token
        will exist (the ``Retry-After`` hint).
        """
        now = self._clock()
        elapsed = now - self._stamp
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
            self._stamp = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return 0.0
        return (1.0 - self._tokens) / self.rate


class TenantQuotas:
    """Lazy map of tenant name → :class:`TokenBucket`.

    ``rate <= 0`` disables quotas entirely (every check admits), which is
    the default for local runs; production configs set a rate and every
    distinct ``X-Tenant`` header gets its own isolated bucket.
    """

    def __init__(
        self,
        rate: float,
        burst: int = 20,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.rate = float(rate)
        self.burst = int(burst)
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}
        self.admitted = 0
        self.throttled = 0

    @property
    def enabled(self) -> bool:
        return self.rate > 0

    def check(self, tenant: str) -> float:
        """Admit ``tenant`` (0.0) or return whole-second retry-after."""
        if not self.enabled:
            self.admitted += 1
            return 0.0
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(self.rate, self.burst, clock=self._clock)
            self._buckets[tenant] = bucket
        wait = bucket.try_acquire()
        if wait == 0.0:
            self.admitted += 1
            return 0.0
        self.throttled += 1
        return max(1.0, math.ceil(wait))

    def metrics(self) -> dict[str, object]:
        return {
            "enabled": self.enabled,
            "rate": self.rate,
            "burst": self.burst,
            "tenants": len(self._buckets),
            "admitted": self.admitted,
            "throttled": self.throttled,
        }
