"""Asyncio HTTP front end for preemptible query serving.

Public surface::

    from repro.server import ServerConfig, ViewJoinServer

    server = ViewJoinServer(service, ServerConfig(port=8399, quantum_ms=5))
    await server.start(); await server.serve_forever()

or, from the command line, ``viewjoin serve --store PATH``.  See
:mod:`repro.server.app` for the wire protocol (``POST /query``,
``GET /next``, NDJSON streaming, quotas, load shedding, drain).
"""

from repro.server.app import (
    BackgroundServer,
    ServerConfig,
    ViewJoinServer,
    outcome_payload,
)
from repro.server.quota import TenantQuotas, TokenBucket

__all__ = [
    "BackgroundServer",
    "ServerConfig",
    "TenantQuotas",
    "TokenBucket",
    "ViewJoinServer",
    "outcome_payload",
]
