"""Repeated-structure batch workloads for the shared-scan executor.

Served TPQ traffic (the ROADMAP's front-end scenario) is dominated by
*near-duplicate* queries: many users ask structurally overlapping — and
frequently byte-identical — tree patterns.  :func:`repeated_batch`
synthesizes that shape deterministically: a small pool of template
queries built from overlapping sub-patterns, then a batch that revisits
already-used templates at a controllable ``overlap`` ratio.  The
benchmark's shared-vs-independent comparison and the differential tests
both run on these batches, so the speedup numbers are measured on the
traffic shape the executor was built for.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import DatasetError

#: Template pool: overlapping path and twig patterns over a small tag
#: alphabet, so distinct templates still share sub-patterns (prefixes and
#: branches) — the realistic served-workload shape.
_TEMPLATES = (
    "//{0}//{1}",
    "//{0}//{1}//{2}",
    "//{0}[//{1}]//{2}",
    "//{0}//{1}[//{2}]//{3}",
    "//{0}[//{1}][//{2}]",
    "//{0}//{2}",
    "//{1}//{2}//{3}",
    "//{0}[//{2}]//{3}",
)


@dataclass
class BatchWorkload:
    """One synthetic batch plus the views that cover its templates."""

    queries: list[str]
    views: list[str]
    overlap: float
    seed: int
    tags: str = "abcd"
    #: realized repeat fraction: 1 - distinct/total.
    repeat_ratio: float = field(init=False)

    def __post_init__(self) -> None:
        total = len(self.queries)
        self.repeat_ratio = (
            1.0 - len(self.distinct()) / total if total else 0.0
        )

    def distinct(self) -> list[str]:
        """Distinct query texts in first-appearance order."""
        return list(dict.fromkeys(self.queries))


def repeated_batch(
    size: int,
    overlap: float = 0.5,
    seed: int = 0,
    tags: str = "abcd",
) -> BatchWorkload:
    """A batch of ``size`` queries revisiting shared templates.

    Args:
        size: number of queries in the batch.
        overlap: probability (0..1) that each query after the first
            repeats an already-used query instead of drawing a fresh
            template; ``0.0`` yields an all-distinct batch (up to the
            template pool size), ``1.0`` a single repeated query.
        seed: deterministic PRNG seed — same arguments, same batch.
        tags: tag alphabet substituted into the templates (needs >= 4).
    """
    if size <= 0:
        return BatchWorkload([], [], overlap, seed, tags)
    if not 0.0 <= overlap <= 1.0:
        raise DatasetError(f"overlap must be in [0, 1], got {overlap}")
    if len(tags) < 4:
        raise DatasetError(f"need at least 4 tags, got {tags!r}")
    rng = random.Random(seed)
    pool = [
        template.format(*tags[:4]) for template in _TEMPLATES
    ]
    rng.shuffle(pool)
    queries: list[str] = [pool[0]]
    fresh = 1
    for _ in range(size - 1):
        if rng.random() < overlap or fresh == len(pool):
            queries.append(rng.choice(queries))
        else:
            queries.append(pool[fresh])
            fresh += 1
    views = [f"//{tag}" for tag in tags[:4]]
    views.append("//{0}//{1}".format(*tags[:2]))
    return BatchWorkload(queries, views, overlap, seed, tags)


def drifting_batches(
    phases: int = 3,
    per_phase: int = 40,
    overlap: float = 0.6,
    seed: int = 0,
    tags: str = "abcd",
) -> list[BatchWorkload]:
    """Phased batches whose hot template set shifts between phases.

    The online-advisor scenario: each phase is a :func:`repeated_batch`
    drawn from a *rotated slice* of the template pool, so the queries
    that dominate phase ``k`` largely stop arriving in phase ``k+1`` —
    views adopted for one phase must earn their storage again or be
    dropped.  Deterministic for fixed arguments (the phase index both
    rotates the pool and reseeds the per-phase PRNG).
    """
    if phases <= 0:
        raise DatasetError(f"need at least one phase, got {phases}")
    if len(tags) < 4:
        raise DatasetError(f"need at least 4 tags, got {tags!r}")
    half = max(1, len(_TEMPLATES) // 2)
    batches: list[BatchWorkload] = []
    for phase in range(phases):
        # Rotate by half the pool each phase: adjacent phases share a
        # little structure (realistic drift), distant phases almost none.
        start = (phase * half) % len(_TEMPLATES)
        rotated = _TEMPLATES[start:] + _TEMPLATES[:start]
        slice_ = rotated[:half]
        rng = random.Random(seed * 1_000_003 + phase)
        pool = [template.format(*tags[:4]) for template in slice_]
        rng.shuffle(pool)
        queries = [pool[0]]
        fresh = 1
        for _ in range(per_phase - 1):
            if rng.random() < overlap or fresh == len(pool):
                queries.append(rng.choice(queries))
            else:
                queries.append(pool[fresh])
                fresh += 1
        views = [f"//{tag}" for tag in tags[:4]]
        batches.append(BatchWorkload(queries, views, overlap, seed, tags))
    return batches
