"""XMark benchmark workload (paper Section VI, "Datasets and test queries").

The paper derives its test queries from XMark's 20 XQuery benchmark
queries by removing features outside the ``{/, //, []}`` XPath fragment
and dropping value predicates, keeping the 14 without OR/NOT predicates:
Q1, Q2, Q4-Q6, Q8-Q11, Q13, Q14, Q18-Q20 (6 path + 8 twig).  The exact
derived texts were published only on the authors' (now offline) web page,
so the queries below are re-derived from the public XMark query semantics
under the same rules (see DESIGN.md §1).  Each query carries the default
covering view set used by the Fig. 5 runs, engineered to reproduce the
property the paper discusses for it (recorded in ``note``).
"""

from __future__ import annotations

from repro.workloads.spec import QuerySpec, make_spec

#: Path queries (Fig. 5(a)): all seven engine combinations apply.
PATH_QUERIES: list[QuerySpec] = [
    make_spec(
        "Q1",
        "//site//people//person//name",
        ["//site//person", "//people//name"],
        note="interleaved views; site/people recur per person ->"
             " high tuple redundancy (paper: TS beats IJ here)",
    ),
    make_spec(
        "Q2",
        "//open_auctions//open_auction//bidder//increase",
        ["//open_auctions//bidder", "//open_auction//increase"],
        note="open_auctions recurs per bidder -> high tuple redundancy",
    ),
    make_spec(
        "Q5",
        "//closed_auctions//closed_auction//price",
        ["//closed_auctions", "//closed_auction//price"],
        note="1:1 views, no recurring nodes (IJ-friendly)",
    ),
    make_spec(
        "Q6",
        "//site//regions//item",
        ["//site//regions", "//item"],
        note="three steps, tuple views without recurring nodes"
             " (paper: IJ slightly beats VJ here)",
    ),
    make_spec(
        "Q18",
        "//open_auctions//open_auction//reserve",
        ["//open_auctions", "//open_auction//reserve"],
        note="1:1 views, no recurring nodes (IJ-friendly)",
    ),
    make_spec(
        "Q20",
        "//people//person//profile//interest",
        ["//people//interest", "//person//profile"],
        note="people recurs per interest -> high tuple redundancy"
             " (paper: TS beats IJ here)",
    ),
]

#: Twig queries (Fig. 5(c)): InterJoin does not apply.
TWIG_QUERIES: list[QuerySpec] = [
    make_spec(
        "Q4",
        "//open_auctions//open_auction[//bidder//personref]//reserve",
        ["//open_auctions//open_auction", "//bidder//personref", "//reserve"],
    ),
    make_spec(
        "Q8",
        "//site[//people//person//name]//closed_auctions//closed_auction//buyer",
        ["//site//closed_auctions//closed_auction",
         "//people//person//name",
         "//buyer"],
    ),
    make_spec(
        "Q9",
        "//site[//people//person]//closed_auctions//closed_auction[//buyer]//itemref",
        ["//people//person",
         "//site//closed_auctions",
         "//closed_auction[//buyer]//itemref"],
    ),
    make_spec(
        "Q10",
        "//people//person//profile[//gender][//age]//interest",
        ["//people//person", "//profile[//gender]//age", "//interest"],
        note="evenly distributed view nodes (paper: VJ+E competitive)",
    ),
    make_spec(
        "Q11",
        "//site[//open_auctions//open_auction//initial]//people//person//profile",
        ["//site//people//person",
         "//open_auctions//open_auction//initial",
         "//profile"],
        note="scalability query of Fig. 7",
    ),
    make_spec(
        "Q13",
        "//regions//australia//item[//name]//description",
        ["//regions//australia", "//item[//name]//description"],
        note="evenly distributed view nodes (paper: VJ+E wins over VJ+LE)",
    ),
    make_spec(
        "Q14",
        "//item[//mailbox//mail]//description//text//keyword",
        ["//item//description", "//mailbox//mail", "//text//keyword"],
    ),
    make_spec(
        "Q19",
        "//site//regions//item[//location]//description//parlist//listitem",
        ["//site//regions",
         "//item//location",
         "//description//parlist//listitem"],
        note="scalability query of Fig. 7; touches the recursive parlist",
    ),
]

ALL_QUERIES: list[QuerySpec] = PATH_QUERIES + TWIG_QUERIES

BY_NAME: dict[str, QuerySpec] = {spec.name: spec for spec in ALL_QUERIES}

#: Scale used for the "standard dataset" experiments (stands in for the
#: 113 MB default XMark document; see DESIGN.md §1).
STANDARD_SCALE = 4.0

#: Scale sweep standing in for the paper's 100MB..700MB documents (Fig. 7).
SCALABILITY_SCALES = (1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0)

#: The views of paper Table IV (space usage on the largest document).
SPACE_VIEWS = ("//item//text//keyword", "//person//education")
