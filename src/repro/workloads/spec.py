"""Workload specification records."""

from __future__ import annotations

from dataclasses import dataclass

from repro.tpq.containment import covering_view_set
from repro.tpq.parser import parse_pattern
from repro.tpq.pattern import Pattern


@dataclass
class QuerySpec:
    """One benchmark query with its default covering view set.

    Attributes:
        name: the paper's query id (``Q1`` … ``Q20``, ``N1`` … ``N8``).
        query: the TPQ.
        views: the default covering view set used in Fig. 5-style runs.
        note: the property the paper attributes to this query, if any.
    """

    name: str
    query: Pattern
    views: list[Pattern]
    note: str = ""

    @property
    def is_path(self) -> bool:
        return self.query.is_path()

    @property
    def views_are_paths(self) -> bool:
        return all(view.is_path() for view in self.views)


def make_spec(
    name: str, query: str, views: list[str], note: str = ""
) -> QuerySpec:
    return QuerySpec(
        name=name,
        query=parse_pattern(query, name=name),
        views=[
            parse_pattern(text, name=f"{name}-v{i + 1}")
            for i, text in enumerate(views)
        ],
        note=note,
    )


def validate_spec(spec: QuerySpec) -> None:
    """Assert the spec satisfies the paper's model (raises otherwise)."""
    covering_view_set(spec.views, spec.query)
