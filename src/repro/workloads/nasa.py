"""NASA dataset workload (paper Section VI).

The paper generated four path (N1-N4) and four twig (N5-N8) queries on the
NASA dataset; their texts are given verbatim in the paper and reproduced
here.  Each query carries a default covering view set (the paper does not
publish the Fig. 5 view sets, so these are designed to reproduce the
discussed properties — e.g. N1's high tuple redundancy).

The module also defines the interleaving-study inputs of Section VI-B:
queries N_p and N_t with the view sets PV1-PV4 / TV1-TV4 of Table III, and
the Table II candidate views for the view-selection experiment.
"""

from __future__ import annotations

from repro.tpq.parser import parse_pattern
from repro.workloads.spec import QuerySpec, make_spec

#: Path queries N1-N4 (texts from the paper).
PATH_QUERIES: list[QuerySpec] = [
    make_spec(
        "N1",
        "//field//footnote//para",
        ["//field//para", "//footnote"],
        note="field recurs per para -> high tuple redundancy"
             " (paper: IJ significantly worse on N1)",
    ),
    make_spec(
        "N2",
        "//dataset//definition//footnote",
        ["//dataset", "//definition//footnote"],
        note="1:1 views (IJ-friendly)",
    ),
    make_spec(
        "N3",
        "//revision/creator/lastname",
        ["//revision", "//creator/lastname"],
        note="pc-edge path",
    ),
    make_spec(
        "N4",
        "//reference//journal//date//year",
        ["//reference//date", "//journal//year"],
        note="interleaved 1:1 views",
    ),
]

#: Twig queries N5-N8 (texts from the paper; N8 read as
#: //descriptions[//observatory]//description//para).
TWIG_QUERIES: list[QuerySpec] = [
    make_spec(
        "N5",
        "//dataset[//definition/footnote]//history//revision//para",
        ["//dataset//history//revision", "//definition/footnote", "//para"],
    ),
    make_spec(
        "N6",
        "//journal[//suffix][title]/date/year",
        ["//journal[title]/date", "//suffix", "//year"],
    ),
    make_spec(
        "N7",
        "//dataset[//field//footnote]//journal[//bibcode]//lastname",
        ["//dataset//journal", "//field//footnote", "//bibcode", "//lastname"],
    ),
    make_spec(
        "N8",
        "//descriptions[//observatory]//description//para",
        ["//descriptions//description", "//observatory", "//para"],
    ),
]

ALL_QUERIES: list[QuerySpec] = PATH_QUERIES + TWIG_QUERIES

BY_NAME: dict[str, QuerySpec] = {spec.name: spec for spec in ALL_QUERIES}

#: Scale standing in for the 23 MB NASA document.
STANDARD_SCALE = 4.0

# ---------------------------------------------------------------------------
# Section VI-B: impact of interleaving conditions (Fig. 6, Table III)
# ---------------------------------------------------------------------------

#: N_p: the path query of Fig. 6(a).
QUERY_NP = parse_pattern(
    "//dataset//tableHead//field//definition//footnote//para", name="Np"
)

#: PV1-PV4 (paper Table III): view sets for N_p with 5, 4, 3, 2 inter-view
#: edges respectively.
PATH_VIEW_SETS: dict[str, list] = {
    "PV1": [
        parse_pattern("//dataset//field//footnote", name="PV1-a"),
        parse_pattern("//tableHead//definition//para", name="PV1-b"),
    ],
    "PV2": [
        parse_pattern("//dataset//field//footnote//para", name="PV2-a"),
        parse_pattern("//tableHead//definition", name="PV2-b"),
    ],
    "PV3": [
        parse_pattern("//dataset//field", name="PV3-a"),
        parse_pattern("//tableHead//definition//footnote//para", name="PV3-b"),
    ],
    "PV4": [
        parse_pattern("//tableHead", name="PV4-a"),
        parse_pattern("//dataset//field//definition//footnote//para",
                      name="PV4-b"),
    ],
}

#: N_t: the twig query of Fig. 6(b) (same as the Table II query).
QUERY_NT = parse_pattern(
    "//dataset//tableHead[//tableLink//title]//field//definition//para",
    name="Nt",
)

#: TV1-TV4 (paper Table III): view sets for N_t with 6, 4, 3, 2 inter-view
#: edges respectively.
TWIG_VIEW_SETS: dict[str, list] = {
    "TV1": [
        parse_pattern("//dataset[//tableLink]//definition", name="TV1-a"),
        parse_pattern("//tableHead//title", name="TV1-b"),
        parse_pattern("//field//para", name="TV1-c"),
    ],
    "TV2": [
        parse_pattern("//dataset//tableHead", name="TV2-a"),
        parse_pattern("//field//para", name="TV2-b"),
        parse_pattern("//tableLink//title", name="TV2-c"),
        parse_pattern("//definition", name="TV2-d"),
    ],
    "TV3": [
        parse_pattern("//dataset//definition//para", name="TV3-a"),
        parse_pattern("//tableHead//field", name="TV3-b"),
        parse_pattern("//tableLink//title", name="TV3-c"),
    ],
    "TV4": [
        parse_pattern("//field//definition//para", name="TV4-a"),
        parse_pattern("//dataset//tableHead", name="TV4-b"),
        parse_pattern("//tableLink//title", name="TV4-c"),
    ],
}

#: Expected inter-view edge counts (#Cond column of Table III).
EXPECTED_CONDITIONS = {
    "PV1": 5, "PV2": 4, "PV3": 3, "PV4": 2,
    "TV1": 6, "TV2": 4, "TV3": 3, "TV4": 2,
}

# ---------------------------------------------------------------------------
# Section V example: view selection candidates (Table II)
# ---------------------------------------------------------------------------

#: The Table II query (same pattern as N_t).
SELECTION_QUERY = QUERY_NT

#: Candidate views v1-v6 of Table II.
SELECTION_CANDIDATES = [
    parse_pattern("//dataset//definition", name="v1"),
    parse_pattern("//dataset//tableHead", name="v2"),
    parse_pattern("//field//para", name="v3"),
    parse_pattern("//definition", name="v4"),
    parse_pattern("//tableLink//title", name="v5"),
    parse_pattern("//field//definition//para", name="v6"),
]

#: The set the paper's cost-based heuristic selects …
EXPECTED_SELECTION = ("v2", "v5", "v6")
#: … and the set a size-only heuristic would select (1.93x slower).
SIZE_ONLY_SELECTION = ("v2", "v3", "v4", "v5")
