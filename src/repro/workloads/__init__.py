"""Benchmark workloads: the paper's queries and view sets.

* :mod:`repro.workloads.xmark` — the 14 XPath queries derived from the
  XMark benchmark (6 path + 8 twig), each with a default covering view set;
* :mod:`repro.workloads.nasa` — queries N1-N8, the interleaving study
  queries N_p / N_t with view sets PV1-PV4 / TV1-TV4 (paper Table III),
  and the Table II view-selection candidates;
* :mod:`repro.workloads.batches` — seeded repeated-structure batches
  (template queries with overlapping sub-patterns at a controllable
  overlap ratio) for the shared-scan batch executor.
"""

from repro.workloads.batches import (
    BatchWorkload,
    drifting_batches,
    repeated_batch,
)
from repro.workloads.spec import QuerySpec, validate_spec
from repro.workloads import nasa, xmark

__all__ = [
    "BatchWorkload",
    "QuerySpec",
    "drifting_batches",
    "repeated_batch",
    "validate_spec",
    "nasa",
    "xmark",
]
