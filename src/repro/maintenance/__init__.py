"""Incremental maintenance of materialized views.

The paper evaluates ViewJoin over static views; this package keeps a
:class:`~repro.storage.catalog.ViewCatalog` correct while the base
document changes, without paying full rematerialization on every write:

* :mod:`repro.maintenance.deltas` — the update vocabulary (insert-subtree,
  delete-subtree, rename-tag) with a JSON wire form;
* :mod:`repro.maintenance.apply` — applies a delta to an immutable
  :class:`~repro.xmltree.document.Document`, re-labelling the affected
  region and recording the label-shift map the view repairs need;
* :mod:`repro.maintenance.wal` — the replayable durable update log kept
  alongside ``save_catalog`` output;
* :mod:`repro.maintenance.repair` — per-view repair: NOOP / SHIFT /
  SPLICE when the delta leaves the view's solution structure intact,
  REBUILD (or DROP, for derived result views) when it does not;
* :mod:`repro.maintenance.engine` — the commit orchestration
  (:func:`apply_updates`), store commit/recovery and the report type.

DESIGN.md §11 documents the architecture and the repair-vs-rebuild rule.
"""

from repro.maintenance.apply import AppliedDelta, apply_delta, apply_deltas
from repro.maintenance.deltas import (
    Delta,
    DeleteSubtree,
    InsertSubtree,
    RenameTag,
    delta_from_dict,
    delta_to_dict,
)
from repro.maintenance.engine import (
    MaintenanceReport,
    ViewMaintenance,
    apply_updates,
    recover_store,
    repair_catalog,
    update_store,
)
from repro.maintenance.repair import RepairAction, RepairDecision, classify
from repro.maintenance.wal import WAL_FILENAME, UpdateLog

__all__ = [
    "AppliedDelta",
    "Delta",
    "DeleteSubtree",
    "InsertSubtree",
    "MaintenanceReport",
    "RenameTag",
    "RepairAction",
    "RepairDecision",
    "UpdateLog",
    "ViewMaintenance",
    "WAL_FILENAME",
    "apply_delta",
    "apply_deltas",
    "apply_updates",
    "classify",
    "delta_from_dict",
    "delta_to_dict",
    "recover_store",
    "repair_catalog",
    "update_store",
]
