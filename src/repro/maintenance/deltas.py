"""The update vocabulary: subtree-granular deltas against a document.

Three delta kinds cover the structural updates the XML update languages
reduce to (insert/delete work on whole subtrees, matching the region
algebra: a subtree occupies one contiguous label interval):

* :class:`InsertSubtree` — graft a new subtree under an existing node;
* :class:`DeleteSubtree` — remove an existing node and its descendants;
* :class:`RenameTag` — change one node's element type in place.

Nodes are addressed by their **start label** in the pre-delta document,
which is stable, order-defining and cheap to look up (document order is
ascending start).  Every delta has a JSON wire form (used by the WAL and
the CLI) via :func:`delta_to_dict` / :func:`delta_from_dict`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Union

from repro.errors import MaintenanceError

#: Element type names the XML writer/parser round-trip safely.
_TAG_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_.\-]*$")


def _check_tag(tag: str) -> str:
    if not isinstance(tag, str) or not _TAG_RE.match(tag):
        raise MaintenanceError(f"invalid element type name {tag!r}")
    return tag


@dataclass(frozen=True)
class InsertSubtree:
    """Insert a subtree under the node whose start label is ``parent_start``.

    Args:
        parent_start: start label of the (existing) parent node.
        position: child slot to insert at: 0 prepends, ``len(children)``
            appends; the new subtree becomes the child at this position.
        rows: the subtree as ``(tag, depth)`` rows in document order
            (depth 0 is the subtree root and must appear exactly once,
            first) — the same compact format
            :func:`repro.xmltree.document.document_from_tuples` accepts.
    """

    parent_start: int
    position: int
    rows: tuple[tuple[str, int], ...]

    kind = "insert-subtree"

    def __post_init__(self) -> None:
        if self.position < 0:
            raise MaintenanceError(
                f"insert position must be >= 0, got {self.position}"
            )
        rows = tuple((row[0], int(row[1])) for row in self.rows)
        if not rows:
            raise MaintenanceError("an inserted subtree needs at least one row")
        if rows[0][1] != 0 or any(depth == 0 for __, depth in rows[1:]):
            raise MaintenanceError(
                "subtree rows must contain exactly one depth-0 root, first"
            )
        for tag, __ in rows:
            _check_tag(tag)
        object.__setattr__(self, "rows", rows)


@dataclass(frozen=True)
class DeleteSubtree:
    """Delete the node whose start label is ``root_start``, plus its
    descendants.  The document root itself cannot be deleted."""

    root_start: int

    kind = "delete-subtree"


@dataclass(frozen=True)
class RenameTag:
    """Rename the node whose start label is ``node_start`` to ``new_tag``.

    Labels do not move; only element-type membership changes."""

    node_start: int
    new_tag: str

    kind = "rename-tag"

    def __post_init__(self) -> None:
        _check_tag(self.new_tag)


Delta = Union[InsertSubtree, DeleteSubtree, RenameTag]


def delta_to_dict(delta: Delta) -> dict:
    """JSON-ready wire form of one delta (inverse of :func:`delta_from_dict`)."""
    if isinstance(delta, InsertSubtree):
        return {
            "kind": delta.kind,
            "parent_start": delta.parent_start,
            "position": delta.position,
            "rows": [[tag, depth] for tag, depth in delta.rows],
        }
    if isinstance(delta, DeleteSubtree):
        return {"kind": delta.kind, "root_start": delta.root_start}
    if isinstance(delta, RenameTag):
        return {
            "kind": delta.kind,
            "node_start": delta.node_start,
            "new_tag": delta.new_tag,
        }
    raise MaintenanceError(f"unknown delta object {delta!r}")


def delta_from_dict(payload: dict) -> Delta:
    """Rebuild a delta from its wire form; rejects malformed payloads."""
    try:
        kind = payload["kind"]
        if kind == InsertSubtree.kind:
            return InsertSubtree(
                parent_start=int(payload["parent_start"]),
                position=int(payload["position"]),
                rows=tuple(
                    (row[0], int(row[1])) for row in payload["rows"]
                ),
            )
        if kind == DeleteSubtree.kind:
            return DeleteSubtree(root_start=int(payload["root_start"]))
        if kind == RenameTag.kind:
            return RenameTag(
                node_start=int(payload["node_start"]),
                new_tag=payload["new_tag"],
            )
    except MaintenanceError:
        raise
    except (KeyError, TypeError, ValueError, IndexError) as exc:
        raise MaintenanceError(f"malformed delta payload: {exc}") from exc
    raise MaintenanceError(f"unknown delta kind {payload.get('kind')!r}")
