"""Maintenance commits: WAL, per-view repair, catalog install, recovery.

:func:`apply_updates` is the in-memory commit primitive: validate and
apply the deltas to the document, log them (when a WAL is attached),
repair or rebuild every catalog view against the new document, then
swap the state in atomically via
:meth:`~repro.storage.catalog.ViewCatalog.install_maintained` — which
bumps ``version`` and ``maintenance_epoch`` so planners, result caches,
snapshots and worker attachments all invalidate.

:func:`update_store` / :func:`recover_store` are the durable variants
over a ``save_catalog`` store directory.  Ordering is WAL-first::

    append + fsync wal.jsonl        (logical intent, replayable)
    repair views -> fresh pages     (old pages never patched)
    rewrite document.xml, manifest  (atomic os.replace; bumps
                                     store_version, records wal_lsn)

A crash at any point leaves either the old store (tail replays on
recovery) or the new one (tail already marked applied) — never a mix.
"""

from __future__ import annotations

import os
import pathlib
from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import MaintenanceError
from repro.maintenance.apply import AppliedDelta, apply_deltas
from repro.maintenance.deltas import Delta
from repro.maintenance.repair import (
    RepairAction,
    RepairDecision,
    classify,
    repair_view,
)
from repro.maintenance.wal import WAL_FILENAME, UpdateLog
from repro.storage.catalog import ViewCatalog
from repro.xmltree.document import Document


@dataclass(frozen=True)
class ViewMaintenance:
    """What one commit did to one view."""

    view: str
    scheme: str
    action: str
    reason: str = ""


@dataclass
class MaintenanceReport:
    """Outcome of one maintenance commit."""

    deltas: int = 0
    nodes_inserted: int = 0
    nodes_deleted: int = 0
    renames: int = 0
    views: list[ViewMaintenance] = field(default_factory=list)

    def action_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for row in self.views:
            counts[row.action] = counts.get(row.action, 0) + 1
        return counts

    @property
    def repaired(self) -> int:
        """Views kept current without rematerialization."""
        counts = self.action_counts()
        return (
            counts.get("noop", 0) + counts.get("shift", 0)
            + counts.get("splice", 0)
        )

    @property
    def rebuilt(self) -> int:
        return self.action_counts().get("rebuild", 0)

    @property
    def dropped(self) -> int:
        return self.action_counts().get("drop", 0)

    def as_dict(self) -> dict[str, object]:
        return {
            "deltas": self.deltas,
            "nodes_inserted": self.nodes_inserted,
            "nodes_deleted": self.nodes_deleted,
            "renames": self.renames,
            "actions": self.action_counts(),
            "views": [
                {
                    "view": row.view,
                    "scheme": row.scheme,
                    "action": row.action,
                    "reason": row.reason,
                }
                for row in self.views
            ],
        }


def repair_catalog(
    catalog: ViewCatalog,
    document: Document,
    changes: Sequence[AppliedDelta],
    force_rebuild: bool = False,
) -> tuple[dict, list[ViewMaintenance]]:
    """Stage two of a commit: classify and repair every catalog view.

    ``document`` / ``changes`` come from :func:`apply_deltas`; the
    catalog itself is only read, so callers decide when (or whether) to
    :meth:`~repro.storage.catalog.ViewCatalog.install_maintained` the
    returned view map.  Exposed separately so the maintenance benchmark
    can time view repair against per-view rematerialization without the
    document-update cost both strategies share.
    """
    new_views: dict = {}
    rows: list[ViewMaintenance] = []
    for (name, scheme), info in catalog.entries():
        decision = classify(info, changes)
        if force_rebuild and decision.action in (
            RepairAction.NOOP, RepairAction.SHIFT, RepairAction.SPLICE,
        ) and not info.derived:
            decision = RepairDecision(
                RepairAction.REBUILD, reason="forced rebuild"
            )
        repaired = repair_view(
            info, decision, document, catalog.pager,
            catalog.partial_distance,
        )
        rows.append(ViewMaintenance(
            view=name,
            scheme=scheme.value,
            action=decision.action.value,
            reason=decision.reason,
        ))
        if repaired is not None:
            new_views[(name, scheme)] = repaired
    return new_views, rows


def apply_updates(
    catalog: ViewCatalog,
    deltas: Sequence[Delta],
    wal: UpdateLog | None = None,
    force_rebuild: bool = False,
) -> MaintenanceReport:
    """Commit ``deltas`` against ``catalog`` (document + every view).

    Args:
        catalog: the live catalog to maintain.
        deltas: updates, applied in order; an empty sequence is a no-op
            commit (no version bump, nothing logged).
        wal: update log to append to (after validation, before any view
            state changes) — pass the store's log for durable commits,
            None for in-memory catalogs or replay-of-already-logged work.
        force_rebuild: rematerialize every (non-derived) view from the
            new document instead of repairing — the naive baseline the
            maintenance benchmark and differential tests compare against.

    Returns:
        A :class:`MaintenanceReport`; ``report.deltas == 0`` means the
        commit was empty and no invalidation happened.
    """
    deltas = list(deltas)
    report = MaintenanceReport()
    if not deltas:
        return report
    document, changes = apply_deltas(catalog.document, deltas)
    if wal is not None:
        wal.append(deltas)
    report.deltas = len(changes)
    for change in changes:
        if change.kind == "insert-subtree":
            report.nodes_inserted += len(change.inserted)
        elif change.kind == "delete-subtree":
            a, b = change.deleted_range
            report.nodes_deleted += (b - a + 1) // 2
        else:
            report.renames += 1

    new_views, rows = repair_catalog(
        catalog, document, changes, force_rebuild=force_rebuild
    )
    report.views.extend(rows)
    catalog.install_maintained(document, new_views)
    return report


def update_store(
    directory: str | os.PathLike[str],
    deltas: Sequence[Delta],
    pool_capacity: int = 64,
    force_rebuild: bool = False,
) -> MaintenanceReport:
    """Durably apply ``deltas`` to a ``save_catalog`` store directory.

    Attaches the catalog, runs a WAL-first :func:`apply_updates`, then
    commits the new document/manifest in place (``store_version`` bump).
    Pending WAL records from an earlier crash are replayed first.
    """
    from repro.storage.persistence import commit_store, load_catalog

    recover_store(directory, pool_capacity=pool_capacity)
    source = pathlib.Path(directory)
    log = UpdateLog(source / WAL_FILENAME)
    catalog = load_catalog(source, pool_capacity=pool_capacity)
    try:
        report = apply_updates(
            catalog, deltas, wal=log, force_rebuild=force_rebuild
        )
        if report.deltas:
            commit_store(catalog, source, wal_lsn=log.tip())
    finally:
        catalog.close()
    return report


def recover_store(
    directory: str | os.PathLike[str], pool_capacity: int = 64
) -> int:
    """Replay WAL records the store's pages do not yet reflect.

    Returns the number of records replayed (0 when the store is current
    or has no log).  Only explicit openers call this — worker processes
    attach read-only-by-convention and must never race recovery writes.
    """
    from repro.storage.persistence import (
        commit_store,
        load_catalog,
        read_store_version,
    )

    source = pathlib.Path(directory)
    log = UpdateLog(source / WAL_FILENAME)
    if not log.exists():
        return 0
    __, applied_lsn = read_store_version(source)
    pending = log.read(after=applied_lsn)
    if not pending:
        return 0
    if applied_lsn and pending[0][0] != applied_lsn + 1:
        raise MaintenanceError(
            f"update log for {source} starts at LSN {pending[0][0]},"
            f" store reflects {applied_lsn}: cannot recover"
        )
    catalog = load_catalog(source, pool_capacity=pool_capacity)
    try:
        # Already logged: replay without re-appending.
        apply_updates(catalog, [delta for __, delta in pending], wal=None)
        commit_store(catalog, source, wal_lsn=log.tip())
    finally:
        catalog.close()
    return len(pending)
