"""Per-view repair: how a materialized view absorbs a delta sequence.

The decision rule (DESIGN.md §11).  For one view and one applied delta:

* the delta's touched element types are probed against the view pattern
  with the Section II containment machinery (a single-tag pattern is a
  subpattern of the view iff the view mentions the tag) — when **no**
  probe embeds, the view's solution-node *identity* sets are unchanged
  (solution statuses depend only on structural relations among view-tag
  nodes, which inserting or deleting a tag-disjoint subtree preserves),
  so the repair is a pure label **SHIFT** (or **NOOP** for renames,
  which move no labels);
* when a probe embeds and the view is a **single-node** pattern, its
  solution list is exactly the tag's node list, so the repair is a
  **SPLICE**: drop deleted entries, shift survivors, merge inserted
  nodes, then recompute pointers with the standard builder;
* otherwise the delta may create or destroy embeddings arbitrarily far
  from the touched region — the view is structurally invalidated and is
  **REBUILD**-materialized from the new document (derived result views
  cannot be rebuilt from the pattern; they are **DROP**-ped instead).

Repairs are copy-on-write: repaired lists go to freshly allocated pages
and the old pages are never patched, so a crash before the manifest
commit leaves the on-disk store fully consistent.  Entry decoding runs
through the lists' ordinary ``scan()`` path, so the buffer-pool
``touch`` accounting mirror stays engaged even here (counters are reset
before any measured evaluation regardless).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence

from repro.errors import MaintenanceError
from repro.maintenance.apply import AppliedDelta
from repro.storage.catalog import Scheme, ViewInfo, materialize
from repro.storage.element import ElementView
from repro.storage.linked import LinkedElementView
from repro.storage.pager import Pager
from repro.storage.records import ElementEntry
from repro.storage.tuples import TupleView
from repro.tpq.containment import is_subpattern
from repro.tpq.pattern import Pattern, PatternNode
from repro.xmltree.document import Document


class RepairAction(enum.Enum):
    NOOP = "noop"
    SHIFT = "shift"
    SPLICE = "splice"
    REBUILD = "rebuild"
    DROP = "drop"


@dataclass(frozen=True)
class RepairDecision:
    """How one view absorbs one commit's delta sequence."""

    action: RepairAction
    #: The applied deltas the repair must process, in commit order
    #: (label shifts and, for SPLICE, membership edits).  Empty for
    #: NOOP / REBUILD / DROP.
    ops: tuple[AppliedDelta, ...] = ()
    reason: str = ""


def _delta_embeds(pattern: Pattern, touched_tags: frozenset[str]) -> bool:
    """True when some touched element type embeds into ``pattern``.

    Expressed through the containment machinery (a one-node probe per
    touched tag) so richer delta patterns keep working if the update
    vocabulary ever grows beyond subtree granularity.
    """
    return any(
        is_subpattern(Pattern(PatternNode(tag)), pattern)
        for tag in touched_tags
    )


def classify(
    info: ViewInfo, changes: Sequence[AppliedDelta]
) -> RepairDecision:
    """Pick the cheapest correct repair for ``info`` under ``changes``."""
    ops: list[AppliedDelta] = []
    needs_splice = False
    single_node = len(info.pattern) == 1
    for change in changes:
        if not _delta_embeds(info.pattern, change.touched_tags):
            # Tag-disjoint: solution sets unchanged; keep the delta only
            # for its label shift (renames shift nothing at all).
            if change.shift_amount:
                ops.append(change)
            continue
        if info.derived:
            return RepairDecision(
                RepairAction.DROP,
                reason=(
                    f"{change.kind} touches {sorted(change.touched_tags)};"
                    " derived result views cannot be re-derived"
                ),
            )
        if single_node and change.kind != "rename-tag":
            ops.append(change)
            needs_splice = True
            continue
        return RepairDecision(
            RepairAction.REBUILD,
            reason=(
                f"{change.kind} touches {sorted(change.touched_tags)}"
                " inside the view pattern"
            ),
        )
    if not ops:
        return RepairDecision(RepairAction.NOOP)
    if needs_splice:
        return RepairDecision(RepairAction.SPLICE, ops=tuple(ops))
    return RepairDecision(RepairAction.SHIFT, ops=tuple(ops))


def repair_view(
    info: ViewInfo,
    decision: RepairDecision,
    document: Document,
    pager: Pager,
    partial_distance: int,
) -> ViewInfo | None:
    """Produce the post-commit catalog row for one view.

    Returns ``info`` unchanged for NOOP, a fresh row for SHIFT / SPLICE /
    REBUILD, and None for DROP.
    """
    if decision.action is RepairAction.NOOP:
        return info
    if decision.action is RepairAction.DROP:
        return None
    if decision.action is RepairAction.REBUILD:
        if info.derived:
            raise MaintenanceError(
                f"derived view {info.pattern.to_xpath()!r} cannot be rebuilt"
            )
        view = materialize(
            document, info.pattern, info.scheme, pager=pager,
            partial_distance=partial_distance,
        )
        return ViewInfo(info.pattern, info.scheme, view)
    if decision.action is RepairAction.SHIFT:
        return _shift_view(info, decision.ops, pager)
    return _splice_view(info, decision.ops, document, pager, partial_distance)


def _shift_view(
    info: ViewInfo, ops: Sequence[AppliedDelta], pager: Pager
) -> ViewInfo:
    """Relabel every entry; list membership, order and pointers survive.

    The shift map is strictly monotone on surviving labels, so document
    order, containment among view nodes, entry indexes — and therefore
    every stored pointer and every LE_p materialization decision — are
    all preserved verbatim.  The relabelling itself runs at page level
    (``view.relabeled`` → ``list.shifted`` → codec bulk shift): records
    are never decoded, which is what makes a SHIFT repair asymptotically
    cheaper than rematerializing the view.
    """
    shift_ops = tuple((op.shift_start, op.shift_amount) for op in ops)
    return ViewInfo(
        info.pattern, info.scheme, info.view.relabeled(shift_ops),
        derived=info.derived,
    )


def _splice_view(
    info: ViewInfo,
    ops: Sequence[AppliedDelta],
    document: Document,
    pager: Pager,
    partial_distance: int,
) -> ViewInfo:
    """Membership repair for a single-node view.

    A one-node pattern's solution list is the full node list of its tag,
    so the post-commit entries follow from the old entries alone: drop
    the deleted interval, shift survivors, merge the inserted tag nodes
    (already labelled in the post-delta space).  Pointers are then
    recomputed by the standard builders — for one-node patterns they
    depend only on the entry labels, never on the document.
    """
    tag = info.pattern.root.tag
    elements = _scan_elements(info)
    for op in ops:
        if op.deleted_range is not None:
            a, b = op.deleted_range
            elements = [e for e in elements if not a <= e.start <= b]
        if op.shift_amount:
            elements = [
                ElementEntry(op.shift(e.start), op.shift(e.end), e.level)
                for e in elements
            ]
        if op.inserted:
            grafted = [
                ElementEntry(start, end, level)
                for ins_tag, start, end, level in op.inserted
                if ins_tag == tag
            ]
            if grafted:
                elements = sorted(
                    elements + grafted, key=lambda e: e.start
                )
    scheme = info.scheme
    if scheme is Scheme.TUPLE:
        repaired: object = TupleView(
            info.pattern, pager, [(element,) for element in elements]
        )
    elif scheme is Scheme.ELEMENT:
        repaired = ElementView(info.pattern, pager, {tag: elements})
    else:
        repaired = LinkedElementView(
            info.pattern, pager, document, {tag: elements},
            partial=(scheme is Scheme.LINKED_PARTIAL),
            partial_distance=partial_distance,
        )
    return ViewInfo(info.pattern, scheme, repaired)


def _scan_elements(info: ViewInfo) -> list[ElementEntry]:
    """Current entries of a single-node view as plain element entries."""
    view = info.view
    if isinstance(view, TupleView):
        return [row[0] for row in view.tuples.scan()]
    tag = info.pattern.root.tag
    stored = view.lists[tag]
    if isinstance(view, ElementView):
        return list(stored.scan())
    return [
        ElementEntry(entry.start, entry.end, entry.level)
        for entry in stored.scan()
    ]
