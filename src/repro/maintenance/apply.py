"""Applying deltas to an immutable region-labelled document.

Region labels make delta application a *piecewise shift*: a subtree of
``k`` nodes occupies one contiguous interval of ``2k`` start/end counters
(one per open and close event), so

* inserting it at counter ``c`` shifts every surviving label ``>= c``
  up by ``2k`` and leaves labels ``< c`` alone;
* deleting the subtree spanning ``[a, b]`` removes exactly the labels in
  that interval and shifts every surviving label ``>= a`` down by
  ``b - a + 1`` (an ancestor keeps its start and shifts only its end —
  the single threshold covers both because no surviving label lies
  inside ``[a, b]``);
* renaming shifts nothing.

:func:`apply_delta` builds the post-delta :class:`Document` (fresh nodes;
the input document is never mutated) and an :class:`AppliedDelta` record
carrying the shift map, the touched element types and the inserted /
deleted label material — everything :mod:`repro.maintenance.repair`
needs to fix a materialized view without re-matching it.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import MaintenanceError, ReproError
from repro.maintenance.deltas import (
    Delta,
    DeleteSubtree,
    InsertSubtree,
    RenameTag,
)
from repro.xmltree.document import Document, Node, document_from_tuples


@dataclass(frozen=True)
class AppliedDelta:
    """One applied delta plus the relabelling facts view repair needs.

    Attributes:
        document: the post-delta document.
        kind: the delta's ``kind`` string.
        touched_tags: element types whose membership changed (inserted,
            deleted, or renamed-from/-to); a view over disjoint tags keeps
            its solution sets and needs at most a label shift.
        shift_start / shift_amount: every surviving pre-delta label
            ``>= shift_start`` moved by ``shift_amount`` (0 for renames).
        inserted: ``(tag, start, end, level)`` of each inserted node, in
            document order, with **post-delta** labels.
        deleted_range: the pre-delta ``[a, b]`` label interval removed by
            a delete, else None.
        renamed: ``(node_start, old_tag, new_tag)`` for a rename, else None.
    """

    document: Document
    kind: str
    touched_tags: frozenset[str]
    shift_start: int
    shift_amount: int
    inserted: tuple[tuple[str, int, int, int], ...] = ()
    deleted_range: tuple[int, int] | None = None
    renamed: tuple[int, str, str] | None = None

    def shift(self, label: int) -> int:
        """Map one surviving pre-delta label into the post-delta space."""
        if self.shift_amount and label >= self.shift_start:
            return label + self.shift_amount
        return label


def apply_delta(document: Document, delta: Delta) -> AppliedDelta:
    """Apply one delta; returns the new document plus the change record."""
    if isinstance(delta, InsertSubtree):
        return _apply_insert(document, delta)
    if isinstance(delta, DeleteSubtree):
        return _apply_delete(document, delta)
    if isinstance(delta, RenameTag):
        return _apply_rename(document, delta)
    raise MaintenanceError(f"unknown delta object {delta!r}")


def apply_deltas(
    document: Document, deltas: Iterable[Delta]
) -> tuple[Document, list[AppliedDelta]]:
    """Apply ``deltas`` in order; returns the final document and the
    per-delta change records (each in the label space of its turn)."""
    changes: list[AppliedDelta] = []
    for delta in deltas:
        applied = apply_delta(document, delta)
        document = applied.document
        changes.append(applied)
    return document, changes


def _node_at_start(document: Document, start: int) -> Node:
    nodes = document.nodes
    i = bisect_left(_Starts(nodes), start)
    if i < len(nodes) and nodes[i].start == start:
        return nodes[i]
    raise MaintenanceError(
        f"no node with start label {start} in document {document.name!r}"
    )


def _subtree_end_index(document: Document, node: Node) -> int:
    """Index one past the last descendant of ``node`` (document order)."""
    return bisect_left(_Starts(document.nodes), node.end, lo=node.index + 1)


class _Starts(Sequence[int]):
    """Zero-copy bisect view over node start labels."""

    __slots__ = ("_nodes",)

    def __init__(self, nodes: Sequence[Node]):
        self._nodes = nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __getitem__(self, i):  # type: ignore[override]
        return self._nodes[i].start


def _subtree_document(rows: Sequence[tuple[str, int]]) -> Document:
    try:
        return document_from_tuples(rows, name="inserted-subtree")
    except MaintenanceError:
        raise
    except ReproError as exc:
        raise MaintenanceError(f"invalid subtree rows: {exc}") from exc


def _apply_insert(document: Document, delta: InsertSubtree) -> AppliedDelta:
    parent = _node_at_start(document, delta.parent_start)
    children = document.children(parent)
    if delta.position > len(children):
        raise MaintenanceError(
            f"insert position {delta.position} exceeds the {len(children)}"
            f" children of node @{parent.start}"
        )
    subtree = _subtree_document(delta.rows)
    if delta.position == len(children):
        cut = parent.end
        at = _subtree_end_index(document, parent)
    else:
        anchor = children[delta.position]
        cut = anchor.start
        at = anchor.index
    count = len(subtree)
    width = 2 * count

    nodes: list[Node] = []
    old = document.nodes
    for node in old[:at]:
        # Prefix nodes all start before the cut; only still-open regions
        # (ancestors and earlier-closing siblings of ancestors) end after it.
        nodes.append(Node(
            node.start,
            node.end + width if node.end >= cut else node.end,
            node.level, node.tag, node.index, node.parent_index,
        ))
    inserted: list[tuple[str, int, int, int]] = []
    for sub in subtree.nodes:
        parent_index = (
            parent.index if sub.parent_index < 0 else at + sub.parent_index
        )
        grafted = Node(
            cut + sub.start, cut + sub.end,
            parent.level + 1 + sub.level, sub.tag,
            at + sub.index, parent_index,
        )
        nodes.append(grafted)
        inserted.append(
            (grafted.tag, grafted.start, grafted.end, grafted.level)
        )
    for node in old[at:]:
        parent_index = (
            node.parent_index + count
            if node.parent_index >= at else node.parent_index
        )
        nodes.append(Node(
            node.start + width, node.end + width,
            node.level, node.tag, node.index + count, parent_index,
        ))
    return AppliedDelta(
        document=Document(nodes, name=document.name),
        kind=delta.kind,
        touched_tags=frozenset(tag for tag, __, __, __ in inserted),
        shift_start=cut,
        shift_amount=width,
        inserted=tuple(inserted),
    )


def _apply_delete(document: Document, delta: DeleteSubtree) -> AppliedDelta:
    root = _node_at_start(document, delta.root_start)
    if root.parent_index < 0:
        raise MaintenanceError("cannot delete the document root")
    first = root.index
    last = _subtree_end_index(document, root)
    count = last - first
    a, b = root.start, root.end
    width = b - a + 1

    nodes: list[Node] = []
    old = document.nodes
    for node in old[:first]:
        # Survivors never end inside [a, b]: those labels all belong to
        # the deleted subtree.
        nodes.append(Node(
            node.start,
            node.end - width if node.end > b else node.end,
            node.level, node.tag, node.index, node.parent_index,
        ))
    for node in old[last:]:
        parent_index = (
            node.parent_index - count
            if node.parent_index >= last else node.parent_index
        )
        nodes.append(Node(
            node.start - width, node.end - width,
            node.level, node.tag, node.index - count, parent_index,
        ))
    return AppliedDelta(
        document=Document(nodes, name=document.name),
        kind=delta.kind,
        touched_tags=frozenset(node.tag for node in old[first:last]),
        shift_start=a,
        shift_amount=-width,
        deleted_range=(a, b),
    )


def _apply_rename(document: Document, delta: RenameTag) -> AppliedDelta:
    target = _node_at_start(document, delta.node_start)
    old_tag = target.tag
    touched = (
        frozenset() if old_tag == delta.new_tag
        else frozenset((old_tag, delta.new_tag))
    )
    nodes = [
        Node(
            node.start, node.end, node.level,
            delta.new_tag if node.index == target.index else node.tag,
            node.index, node.parent_index,
        )
        for node in document.nodes
    ]
    return AppliedDelta(
        document=Document(nodes, name=document.name),
        kind=delta.kind,
        touched_tags=touched,
        shift_start=0,
        shift_amount=0,
        renamed=(target.start, old_tag, delta.new_tag),
    )
