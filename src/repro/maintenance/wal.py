"""The durable, replayable update log (write-ahead log).

One JSON record per line in ``wal.jsonl`` inside a ``save_catalog``
store directory::

    {"lsn": 1, "op": {"kind": "insert-subtree", ...}}

LSNs are contiguous and start at 1.  The store manifest records the
highest LSN its pages reflect (``wal_lsn``), so recovery is a pure
function of the two files: replay every record with ``lsn > wal_lsn``.
Commits append (and fsync) the log **before** any view page or manifest
is touched; a crash mid-commit therefore loses nothing — the old
manifest still points at the old pages, and the logged tail replays on
the next :func:`repro.maintenance.engine.recover_store`.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Iterable, Sequence

from repro.errors import MaintenanceError
from repro.maintenance.deltas import Delta, delta_from_dict, delta_to_dict

WAL_FILENAME = "wal.jsonl"


class UpdateLog:
    """Append-only delta log bound to one file path."""

    def __init__(self, path: str | os.PathLike[str]):
        self.path = pathlib.Path(path)
        self._tip: int | None = None

    def exists(self) -> bool:
        return self.path.exists()

    def tip(self) -> int:
        """Highest LSN in the log (0 when empty or absent)."""
        if self._tip is None:
            self._tip = 0
            for lsn, __ in self._records():
                self._tip = lsn
        return self._tip

    def append(self, deltas: Sequence[Delta]) -> int:
        """Durably append ``deltas`` as consecutive records; returns the
        new tip LSN.  The file is fsynced before returning."""
        lsn = self.tip()
        lines = []
        for delta in deltas:
            lsn += 1
            lines.append(json.dumps(
                {"lsn": lsn, "op": delta_to_dict(delta)},
                separators=(",", ":"), sort_keys=True,
            ))
        if not lines:
            return lsn
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write("".join(line + "\n" for line in lines))
            handle.flush()
            os.fsync(handle.fileno())
        self._tip = lsn
        return lsn

    def read(self, after: int = 0) -> list[tuple[int, Delta]]:
        """All ``(lsn, delta)`` records with ``lsn > after``, in order."""
        out = []
        for lsn, payload in self._records():
            if lsn > after:
                out.append((lsn, delta_from_dict(payload)))
        return out

    def replay(self) -> Iterable[tuple[int, Delta]]:
        """Every record in order (alias for ``read(after=0)``)."""
        return self.read(after=0)

    def _records(self) -> Iterable[tuple[int, dict]]:
        if not self.path.exists():
            return
        expected = 0
        with open(self.path, "r", encoding="utf-8") as handle:
            for line_no, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    lsn = int(record["lsn"])
                    payload = record["op"]
                except (ValueError, KeyError, TypeError) as exc:
                    raise MaintenanceError(
                        f"corrupt update log {self.path}:{line_no}: {exc}"
                    ) from exc
                expected += 1
                if lsn != expected:
                    raise MaintenanceError(
                        f"update log {self.path}:{line_no}: LSN {lsn}"
                        f" breaks the contiguous sequence (expected"
                        f" {expected})"
                    )
                yield lsn, payload
