"""The durable, replayable update log (write-ahead log).

One length-prefixed, checksummed JSON record per line in ``wal.jsonl``
inside a ``save_catalog`` store directory::

    58 {"crc":1234567890,"lsn":1,"op":{"kind":"insert-subtree",...}}

The prefix is the byte length of the JSON body; ``crc`` is the CRC32 of
the canonical ``{"lsn",...,"op":...}`` encoding.  Together they make
every corruption class detectable: a *torn* append (crash mid-write)
fails the length check, a *garbled* record (bit rot) fails the CRC.
Records written before this format (bare JSON lines) still parse, just
without integrity protection.

LSNs are contiguous and start at 1.  The store manifest records the
highest LSN its pages reflect (``wal_lsn``), so recovery is a pure
function of the two files: replay every record with ``lsn > wal_lsn``.
Commits append (and fsync) the log **before** any view page or manifest
is touched; a crash mid-commit therefore loses nothing — the old
manifest still points at the old pages, and the logged tail replays on
the next :func:`repro.maintenance.engine.recover_store`.

Torn-tail tolerance: an invalid **final** record is the signature of a
crash mid-append — nothing after it was ever acknowledged — so readers
stop at the last valid record instead of failing, and the next
:meth:`UpdateLog.append` truncates the torn bytes before writing.  An
invalid record *followed by valid ones* is genuine corruption and stays
a typed :class:`~repro.errors.MaintenanceError`.
"""

from __future__ import annotations

import json
import os
import pathlib
import zlib
from typing import Iterable, Sequence

from repro.errors import FaultInjected, MaintenanceError
from repro.maintenance.deltas import Delta, delta_from_dict, delta_to_dict
from repro.resilience import faults

WAL_FILENAME = "wal.jsonl"


class _InvalidRecord(MaintenanceError):
    """Internal: one record failed its length/checksum/shape check.

    Only ever raised (and caught) inside :meth:`UpdateLog._records`,
    where the scan decides whether the bad record is a tolerable torn
    tail or genuine corruption."""


def _canonical(lsn: int, op: dict) -> str:
    return json.dumps(
        {"lsn": lsn, "op": op}, separators=(",", ":"), sort_keys=True
    )


def _record_line(lsn: int, op: dict) -> str:
    crc = zlib.crc32(_canonical(lsn, op).encode("utf-8")) & 0xFFFFFFFF
    body = json.dumps(
        {"crc": crc, "lsn": lsn, "op": op},
        separators=(",", ":"), sort_keys=True,
    )
    return f"{len(body.encode('utf-8'))} {body}\n"


class UpdateLog:
    """Append-only delta log bound to one file path."""

    def __init__(self, path: str | os.PathLike[str]):
        self.path = pathlib.Path(path)
        self._tip: int | None = None
        self._torn_tail = False
        self._valid_end = 0

    def exists(self) -> bool:
        return self.path.exists()

    @property
    def torn_tail_detected(self) -> bool:
        """True when the most recent scan stopped at a torn tail."""
        return self._torn_tail

    def tip(self) -> int:
        """Highest valid LSN in the log (0 when empty or absent)."""
        if self._tip is None:
            self._tip = 0
            for lsn, __ in self._records():
                self._tip = lsn
        return self._tip

    def append(self, deltas: Sequence[Delta]) -> int:
        """Durably append ``deltas`` as consecutive records; returns the
        new tip LSN.  The file is fsynced before returning.  A torn tail
        left by an earlier crash is truncated first, so new records are
        never appended after garbage."""
        lsn = self._ensure_clean_tail()
        lines = []
        for delta in deltas:
            lsn += 1
            lines.append(_record_line(lsn, delta_to_dict(delta)))
        if not lines:
            return lsn
        blob = "".join(lines).encode("utf-8")
        crashed = False
        state = faults.STATE
        if state is not None:
            blob, crashed = state.wal_append(blob)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "ab") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        if crashed:
            self._tip = None  # partial bytes hit disk; rescan next read
            raise FaultInjected(
                f"injected torn fault at wal-append ({self.path})"
            )
        self._tip = lsn
        return lsn

    def read(self, after: int = 0) -> list[tuple[int, Delta]]:
        """All ``(lsn, delta)`` records with ``lsn > after``, in order."""
        out = []
        for lsn, payload in self._records():
            if lsn > after:
                out.append((lsn, delta_from_dict(payload)))
        return out

    def replay(self) -> Iterable[tuple[int, Delta]]:
        """Every record in order (alias for ``read(after=0)``)."""
        return self.read(after=0)

    def _ensure_clean_tail(self) -> int:
        """Drop torn trailing bytes (crash debris); returns the tip LSN."""
        records = list(self._records())
        tip = records[-1][0] if records else 0
        if self._torn_tail:
            with open(self.path, "r+b") as handle:
                handle.truncate(self._valid_end)
            self._torn_tail = False
        self._tip = tip
        return tip

    @staticmethod
    def _parse_record(text: str) -> tuple[int, dict]:
        """One record line -> ``(lsn, op)``; raises :class:`_InvalidRecord`
        with a reason for every invalid shape (torn, garbled,
        legacy-broken)."""
        if text[0].isdigit():
            prefix, sep, body = text.partition(" ")
            if not sep or not prefix.isdigit():
                raise _InvalidRecord("bad length prefix")
            if len(body.encode("utf-8")) != int(prefix):
                raise _InvalidRecord(
                    f"length mismatch (declared {prefix},"
                    f" got {len(body.encode('utf-8'))})"
                )
            record = json.loads(body)
            crc = record.get("crc")
            lsn = int(record["lsn"])
            op = record["op"]
            expected = zlib.crc32(
                _canonical(lsn, op).encode("utf-8")
            ) & 0xFFFFFFFF
            if crc != expected:
                raise _InvalidRecord(
                    f"checksum mismatch (recorded {crc}, computed"
                    f" {expected})"
                )
            return lsn, op
        # Legacy record: bare JSON line, no length prefix or checksum.
        record = json.loads(text)
        return int(record["lsn"]), record["op"]

    def _records(self) -> Iterable[tuple[int, dict]]:
        self._torn_tail = False
        self._valid_end = 0
        if not self.path.exists():
            return
        blob = self.path.read_bytes()
        lines = blob.split(b"\n")
        offset = 0
        expected = 0
        for line_no, raw in enumerate(lines, start=1):
            line_end = min(offset + len(raw) + 1, len(blob))
            stripped = raw.strip()
            if not stripped:
                offset = line_end
                continue
            try:
                text = stripped.decode("utf-8")
                lsn, payload = self._parse_record(text)
            except (_InvalidRecord, ValueError, KeyError, TypeError,
                    UnicodeDecodeError) as exc:
                if any(rest.strip() for rest in lines[line_no:]):
                    raise MaintenanceError(
                        f"corrupt update log {self.path}:{line_no}: {exc}"
                    ) from exc
                # Invalid final record: a torn append, not corruption —
                # nothing after it was acknowledged, so tolerate it.
                self._torn_tail = True
                return
            expected += 1
            if lsn != expected:
                raise MaintenanceError(
                    f"update log {self.path}:{line_no}: LSN {lsn}"
                    f" breaks the contiguous sequence (expected"
                    f" {expected})"
                )
            self._valid_end = line_end
            offset = line_end
            yield lsn, payload
