"""XML substrate: region-labelled tree model, parser and writer.

This subpackage implements the data layer the paper builds on (Section II):
an XML document is a tree whose nodes carry ``<start, end, level>`` region
labels (the Li & Moon scheme), from which ancestor / parent / following
relationships are decided in O(1).
"""

from repro.xmltree.collection import combine_documents, member_of
from repro.xmltree.dataguide import DataGuide
from repro.xmltree.document import Document, DocumentBuilder, Node
from repro.xmltree.labels import (
    is_ancestor,
    is_descendant,
    is_following,
    is_parent,
    region_contains,
)
from repro.xmltree.parser import parse_xml, parse_xml_file
from repro.xmltree.writer import write_xml, write_xml_file

__all__ = [
    "combine_documents",
    "member_of",
    "DataGuide",
    "Document",
    "DocumentBuilder",
    "Node",
    "is_ancestor",
    "is_descendant",
    "is_following",
    "is_parent",
    "region_contains",
    "parse_xml",
    "parse_xml_file",
    "write_xml",
    "write_xml_file",
]
