"""Region-labelled XML document model.

A :class:`Document` stores its nodes in document order (ascending ``start``
label) in a flat list, which doubles as the element storage the conventional
structural-join algorithms assume: :meth:`Document.tag_list` partitions the
instances by element type into per-type sorted lists.

Documents are immutable once built.  Use :class:`DocumentBuilder` (or the
parser / dataset generators) to construct them.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterable, Iterator, Sequence

from repro.errors import ReproError
from repro.xmltree.labels import is_ancestor


class Node:
    """A single element instance with its region label.

    Attributes:
        start: document-order rank of the start tag.
        end: rank of the end tag; the open interval (start, end) contains
            exactly the labels of this node's descendants.
        level: root-to-node path length (root is level 0).
        tag: element type name.
        index: position of this node in the document's node list
            (equals its rank in document order).
        parent_index: index of the parent node, or -1 for the root.
    """

    __slots__ = ("start", "end", "level", "tag", "index", "parent_index")

    def __init__(
        self,
        start: int,
        end: int,
        level: int,
        tag: str,
        index: int,
        parent_index: int,
    ):
        self.start = start
        self.end = end
        self.level = level
        self.tag = tag
        self.index = index
        self.parent_index = parent_index

    def label(self) -> tuple[int, int, int]:
        """Return the region label as a ``(start, end, level)`` tuple."""
        return (self.start, self.end, self.level)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Node({self.tag!r}, start={self.start}, end={self.end}, "
            f"level={self.level})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Node):
            return NotImplemented
        return self.start == other.start and self.end == other.end

    def __hash__(self) -> int:
        return hash((self.start, self.end))

    def __lt__(self, other: "Node") -> bool:
        return self.start < other.start


class Document:
    """An immutable region-labelled XML tree.

    Args:
        nodes: all nodes in document order; ``nodes[i].index == i`` must hold.

    The constructor validates label consistency (strictly nested regions,
    parent levels) so that every downstream component can rely on them.
    """

    def __init__(self, nodes: Sequence[Node], name: str = "document"):
        self.name = name
        self._nodes: list[Node] = list(nodes)
        self._by_tag: dict[str, list[Node]] = {}
        self._validate()
        for node in self._nodes:
            self._by_tag.setdefault(node.tag, []).append(node)

    def _validate(self) -> None:
        if not self._nodes:
            raise ReproError("a document must contain at least one node")
        root = self._nodes[0]
        if root.parent_index != -1:
            raise ReproError("first node in document order must be the root")
        for i, node in enumerate(self._nodes):
            if node.index != i:
                raise ReproError(
                    f"node {node!r} has index {node.index}, expected {i}"
                )
            if node.start >= node.end:
                raise ReproError(f"node {node!r} has start >= end")
            if i > 0:
                parent = self._nodes[node.parent_index]
                if not is_ancestor(parent, node):
                    raise ReproError(
                        f"node {node!r} not inside its parent's region"
                    )
                if parent.level != node.level - 1:
                    raise ReproError(
                        f"node {node!r} level inconsistent with parent"
                    )

    # -- basic accessors ---------------------------------------------------

    @property
    def root(self) -> Node:
        """The document root node."""
        return self._nodes[0]

    @property
    def nodes(self) -> Sequence[Node]:
        """All nodes in document order."""
        return self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes)

    def tags(self) -> set[str]:
        """The set of element types occurring in the document."""
        return set(self._by_tag)

    def tag_list(self, tag: str) -> Sequence[Node]:
        """All ``tag``-type nodes in document order (empty if absent).

        This is the per-element-type partition used as input streams by the
        conventional structural-join algorithms (element scheme).
        """
        return self._by_tag.get(tag, ())

    def tag_count(self, tag: str) -> int:
        """Number of ``tag``-type nodes."""
        return len(self._by_tag.get(tag, ()))

    # -- navigation ---------------------------------------------------------

    def parent(self, node: Node) -> Node | None:
        """Parent of ``node``, or None for the root."""
        if node.parent_index < 0:
            return None
        return self._nodes[node.parent_index]

    def children(self, node: Node) -> list[Node]:
        """Children of ``node`` in document order."""
        result = []
        i = node.index + 1
        n = len(self._nodes)
        while i < n and self._nodes[i].start < node.end:
            child = self._nodes[i]
            result.append(child)
            # Skip over the whole subtree of `child`: descendants occupy a
            # contiguous index range because nodes are in document order.
            i = self._subtree_end_index(child)
        return result

    def descendants(self, node: Node) -> Sequence[Node]:
        """All proper descendants of ``node`` in document order."""
        return self._nodes[node.index + 1 : self._subtree_end_index(node)]

    def ancestors(self, node: Node) -> list[Node]:
        """Proper ancestors of ``node``, nearest first."""
        result = []
        current = self.parent(node)
        while current is not None:
            result.append(current)
            current = self.parent(current)
        return result

    def _subtree_end_index(self, node: Node) -> int:
        """Index one past the last descendant of ``node``."""
        # Descendants are exactly the nodes with start in (node.start, node.end).
        starts = _StartsView(self._nodes)
        return bisect_left(starts, node.end, lo=node.index + 1)

    def descendants_by_tag(self, node: Node, tag: str) -> list[Node]:
        """``tag``-type proper descendants of ``node`` in document order."""
        tag_nodes = self._by_tag.get(tag)
        if not tag_nodes:
            return []
        starts = _StartsView(tag_nodes)
        lo = bisect_right(starts, node.start)
        hi = bisect_left(starts, node.end, lo=lo)
        return tag_nodes[lo:hi]

    def lowest_ancestor_by_tag(self, node: Node, tag: str) -> Node | None:
        """The nearest proper ancestor of ``node`` with element type ``tag``."""
        current = self.parent(node)
        while current is not None:
            if current.tag == tag:
                return current
            current = self.parent(current)
        return None

    # -- statistics ----------------------------------------------------------

    def max_depth(self) -> int:
        """Length of the longest root-to-leaf path (levels; root counts 0)."""
        return max(node.level for node in self._nodes)

    def summary(self) -> dict[str, int]:
        """Coarse statistics useful in benchmark reports."""
        return {
            "nodes": len(self._nodes),
            "tags": len(self._by_tag),
            "max_depth": self.max_depth(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Document({self.name!r}, nodes={len(self._nodes)})"


class _StartsView(Sequence[int]):
    """Zero-copy view of the start labels of a node list, for bisect."""

    __slots__ = ("_nodes",)

    def __init__(self, nodes: Sequence[Node]):
        self._nodes = nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __getitem__(self, i):  # type: ignore[override]
        return self._nodes[i].start


class DocumentBuilder:
    """Incremental builder assigning region labels during construction.

    Usage::

        b = DocumentBuilder()
        with b.element("site"):
            with b.element("regions"):
                b.leaf("item")
        doc = b.build()

    ``start``/``end`` counters advance by one for every open and close event,
    which yields the strict-containment property the label algebra requires.
    """

    def __init__(self, name: str = "document"):
        self.name = name
        self._counter = 0
        self._nodes: list[Node] = []
        self._stack: list[Node] = []

    # -- low-level API -------------------------------------------------------

    def open(self, tag: str) -> Node:
        """Open an element; returns the (still incomplete) node."""
        parent_index = self._stack[-1].index if self._stack else -1
        node = Node(
            start=self._counter,
            end=-1,  # patched by close()
            level=len(self._stack),
            tag=tag,
            index=len(self._nodes),
            parent_index=parent_index,
        )
        self._counter += 1
        self._nodes.append(node)
        self._stack.append(node)
        return node

    def close(self) -> Node:
        """Close the most recently opened element."""
        if not self._stack:
            raise ReproError("close() without matching open()")
        node = self._stack.pop()
        node.end = self._counter
        self._counter += 1
        return node

    def leaf(self, tag: str) -> Node:
        """Convenience: open and immediately close an element."""
        self.open(tag)
        return self.close()

    # -- context-manager sugar -------------------------------------------------

    def element(self, tag: str) -> "_ElementContext":
        """Context manager opening ``tag`` on enter and closing it on exit."""
        return _ElementContext(self, tag)

    def build(self) -> Document:
        """Finalize and return the immutable document."""
        if self._stack:
            raise ReproError(
                f"{len(self._stack)} element(s) still open; close them first"
            )
        return Document(self._nodes, name=self.name)


class _ElementContext:
    __slots__ = ("_builder", "_tag")

    def __init__(self, builder: DocumentBuilder, tag: str):
        self._builder = builder
        self._tag = tag

    def __enter__(self) -> Node:
        return self._builder.open(self._tag)

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self._builder.close()


def document_from_tuples(
    rows: Iterable[tuple[str, int]], name: str = "document"
) -> Document:
    """Build a document from ``(tag, depth)`` rows in document order.

    A compact format handy in tests: depth 0 is the root, and each row
    attaches under the most recent row of depth one less.
    """
    builder = DocumentBuilder(name)
    depth = -1
    for tag, row_depth in rows:
        if row_depth > depth + 1:
            raise ReproError(
                f"row ({tag!r}, {row_depth}) skips levels (previous depth {depth})"
            )
        while depth >= row_depth:
            builder.close()
            depth -= 1
        builder.open(tag)
        depth = row_depth
    while depth >= 0:
        builder.close()
        depth -= 1
    return builder.build()
