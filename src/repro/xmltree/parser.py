"""Minimal from-scratch XML parser producing region-labelled documents.

Supports the XML subset the experiments need: elements, attributes (parsed
and discarded — region labelling concerns element structure only), character
data, comments, processing instructions, CDATA sections, and an optional XML
declaration / DOCTYPE line.  Entities are left unexpanded since text content
does not influence tree pattern matching.

The parser is a single linear scan; position information is preserved in
error messages.
"""

from __future__ import annotations

import io
import os

from repro.errors import XmlParseError
from repro.xmltree.document import Document, DocumentBuilder

_NAME_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_:")
_NAME_CHARS = _NAME_START | set("0123456789.-")


def parse_xml(text: str, name: str = "document") -> Document:
    """Parse XML text into a region-labelled :class:`Document`.

    Raises:
        XmlParseError: on malformed markup or mismatched tags.
    """
    parser = _Parser(text)
    return parser.run(name)


def parse_xml_file(path: str | os.PathLike[str]) -> Document:
    """Parse an XML file; the document name is the file's base name."""
    with io.open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    return parse_xml(text, name=os.path.basename(os.fspath(path)))


class _Parser:
    """Recursive-descent-free linear scanner over the XML text."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.length = len(text)

    def run(self, name: str) -> Document:
        builder = DocumentBuilder(name)
        open_tags: list[str] = []
        saw_root = False
        while self.pos < self.length:
            lt = self.text.find("<", self.pos)
            if lt < 0:
                trailing = self.text[self.pos :].strip()
                if trailing:
                    raise XmlParseError(
                        "character data outside the root element", self.pos
                    )
                break
            # Character data between tags is ignored for labelling purposes,
            # but data outside the root element is an error.
            between = self.text[self.pos : lt]
            if between.strip() and not open_tags:
                raise XmlParseError(
                    "character data outside the root element", self.pos
                )
            self.pos = lt
            self._dispatch_markup(builder, open_tags)
            if open_tags or builder._nodes:
                saw_root = True
        if open_tags:
            raise XmlParseError(
                f"unclosed element <{open_tags[-1]}> at end of input", self.pos
            )
        if not saw_root:
            raise XmlParseError("no root element found", 0)
        return builder.build()

    def _dispatch_markup(
        self, builder: DocumentBuilder, open_tags: list[str]
    ) -> None:
        text = self.text
        pos = self.pos
        if text.startswith("<!--", pos):
            self._skip_until("-->", "unterminated comment")
        elif text.startswith("<![CDATA[", pos):
            self._skip_until("]]>", "unterminated CDATA section")
        elif text.startswith("<!", pos):
            self._skip_until(">", "unterminated declaration")
        elif text.startswith("<?", pos):
            self._skip_until("?>", "unterminated processing instruction")
        elif text.startswith("</", pos):
            self._close_tag(builder, open_tags)
        else:
            self._open_tag(builder, open_tags)

    def _skip_until(self, terminator: str, message: str) -> None:
        end = self.text.find(terminator, self.pos)
        if end < 0:
            raise XmlParseError(message, self.pos)
        self.pos = end + len(terminator)

    def _read_name(self) -> str:
        start = self.pos
        if start >= self.length or self.text[start] not in _NAME_START:
            raise XmlParseError("expected an XML name", start)
        pos = start + 1
        while pos < self.length and self.text[pos] in _NAME_CHARS:
            pos += 1
        self.pos = pos
        return self.text[start:pos]

    def _skip_whitespace(self) -> None:
        while self.pos < self.length and self.text[self.pos].isspace():
            self.pos += 1

    def _open_tag(self, builder: DocumentBuilder, open_tags: list[str]) -> None:
        if not open_tags and builder._nodes:
            raise XmlParseError("multiple root elements", self.pos)
        self.pos += 1  # consume '<'
        tag = self._read_name()
        self._skip_attributes()
        if self.text.startswith("/>", self.pos):
            self.pos += 2
            builder.leaf(tag)
            return
        if self.pos >= self.length or self.text[self.pos] != ">":
            raise XmlParseError(f"malformed start tag <{tag}", self.pos)
        self.pos += 1
        builder.open(tag)
        open_tags.append(tag)

    def _close_tag(self, builder: DocumentBuilder, open_tags: list[str]) -> None:
        self.pos += 2  # consume '</'
        tag = self._read_name()
        self._skip_whitespace()
        if self.pos >= self.length or self.text[self.pos] != ">":
            raise XmlParseError(f"malformed end tag </{tag}", self.pos)
        self.pos += 1
        if not open_tags:
            raise XmlParseError(f"unexpected end tag </{tag}>", self.pos)
        expected = open_tags.pop()
        if expected != tag:
            raise XmlParseError(
                f"mismatched end tag </{tag}>, expected </{expected}>", self.pos
            )
        builder.close()

    def _skip_attributes(self) -> None:
        """Scan past attributes, validating quote balance."""
        while True:
            self._skip_whitespace()
            if self.pos >= self.length:
                raise XmlParseError("unterminated start tag", self.pos)
            ch = self.text[self.pos]
            if ch in (">",) or self.text.startswith("/>", self.pos):
                return
            self._read_name()
            self._skip_whitespace()
            if self.pos < self.length and self.text[self.pos] == "=":
                self.pos += 1
                self._skip_whitespace()
                if self.pos >= self.length or self.text[self.pos] not in "\"'":
                    raise XmlParseError("attribute value must be quoted", self.pos)
                quote = self.text[self.pos]
                end = self.text.find(quote, self.pos + 1)
                if end < 0:
                    raise XmlParseError("unterminated attribute value", self.pos)
                self.pos = end + 1
