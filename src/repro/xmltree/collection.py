"""Document collections: query several documents as one store.

XML databases evaluate TPQs over *collections*; the region-label algebra,
however, assumes a single global document order.  :func:`combine_documents`
builds that order: member documents are re-labelled into disjoint label
ranges under a synthetic collection root.  Because every query and view
starts with ``//`` and the collection root's tag is reserved, no match can
span two member documents — the combined document's matches are exactly
the union of the members' matches, which the tests verify.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ReproError
from repro.xmltree.document import Document, Node

#: Reserved tag of the synthetic collection root.
COLLECTION_ROOT_TAG = "__collection__"


def combine_documents(
    documents: Sequence[Document],
    name: str = "collection",
    root_tag: str = COLLECTION_ROOT_TAG,
) -> Document:
    """Combine ``documents`` into one tree under a synthetic root.

    Args:
        documents: member documents, kept in the given order.
        name: name of the combined document.
        root_tag: tag of the synthetic root; must not occur in any member
            (otherwise queries could match across document boundaries).

    Returns:
        A document whose non-root nodes are the members' nodes with
        shifted region labels (levels deepen by one).
    """
    if not documents:
        raise ReproError("cannot combine an empty document collection")
    for document in documents:
        if root_tag in document.tags():
            raise ReproError(
                f"member document {document.name!r} already uses the"
                f" reserved root tag {root_tag!r}"
            )

    total = sum(len(document) for document in documents)
    nodes: list[Node] = [
        Node(
            start=0,
            end=0,  # patched below
            level=0,
            tag=root_tag,
            index=0,
            parent_index=-1,
        )
    ]
    label_offset = 1
    index_offset = 1
    for document in documents:
        for node in document:
            nodes.append(
                Node(
                    start=node.start + label_offset,
                    end=node.end + label_offset,
                    level=node.level + 1,
                    tag=node.tag,
                    index=node.index + index_offset,
                    parent_index=(
                        0
                        if node.parent_index < 0
                        else node.parent_index + index_offset
                    ),
                )
            )
        label_offset += documents and (document.root.end + 1)
        index_offset += len(document)
    nodes[0].end = label_offset
    assert len(nodes) == total + 1
    return Document(nodes, name=name)


def member_of(collection: Document, node: Node) -> int:
    """Index of the member document containing ``node``.

    Member roots are exactly the collection root's children, in order.
    """
    if node.parent_index < 0:
        raise ReproError("the collection root belongs to no member")
    roots = collection.children(collection.root)
    for position, root in enumerate(roots):
        if root.start <= node.start and node.end <= root.end:
            return position
    raise ReproError(f"node {node!r} is outside every member document")
