"""Serialize region-labelled documents back to XML text.

The writer emits element structure only (the model carries no text/attribute
payload); output round-trips through :func:`repro.xmltree.parser.parse_xml`
with identical region labels, which the test suite verifies.
"""

from __future__ import annotations

import io
import os
from typing import TextIO

from repro.xmltree.document import Document, Node


def write_xml(document: Document, indent: int = 2) -> str:
    """Render ``document`` as XML text.

    Args:
        document: the document to serialize.
        indent: spaces per nesting level; 0 renders a single line.
    """
    out = io.StringIO()
    _write(document, out, indent)
    return out.getvalue()


def write_xml_file(
    document: Document, path: str | os.PathLike[str], indent: int = 2
) -> None:
    """Write ``document`` as XML to ``path``."""
    with io.open(path, "w", encoding="utf-8") as handle:
        _write(document, handle, indent)


def _write(document: Document, out: TextIO, indent: int) -> None:
    newline = "\n" if indent else ""

    def emit(node: Node) -> None:
        pad = " " * (indent * node.level)
        children = document.children(node)
        if not children:
            out.write(f"{pad}<{node.tag}/>{newline}")
            return
        out.write(f"{pad}<{node.tag}>{newline}")
        for child in children:
            emit(child)
        out.write(f"{pad}</{node.tag}>{newline}")

    emit(document.root)
