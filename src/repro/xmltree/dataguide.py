"""DataGuide path summaries for query pruning and statistics.

A DataGuide (Goldman & Widom, VLDB 1997) is the deterministic summary of
all label paths occurring in a document: one summary node per distinct
root path, annotated here with its instance count.  Two uses in this
repository:

* **satisfiability pruning** — a TPQ that cannot be embedded into the
  summary cannot match the document at all, so the planner can answer
  "0 matches" without touching any view (``may_match``);
* **path statistics** — instance counts per summary node give upper
  bounds for the solution-list sizes used by the selection estimators.

The summary is built in one pass over the document and is typically tiny
(one node per distinct path, independent of how many instances share it).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.tpq.pattern import Pattern, PatternNode
from repro.xmltree.document import Document


@dataclass
class GuideNode:
    """One summary node: a distinct label path from the root."""

    tag: str
    depth: int
    count: int = 0
    children: dict[str, "GuideNode"] = field(default_factory=dict)

    def child(self, tag: str) -> "GuideNode | None":
        return self.children.get(tag)


class DataGuide:
    """The strong DataGuide of a document, with instance counts."""

    def __init__(self, document: Document):
        self.root = GuideNode(tag=document.root.tag, depth=0)
        self._size = 1
        self._build(document)

    def _build(self, document: Document) -> None:
        # Map each document node index to its summary node, top-down.
        summary_of: list[GuideNode | None] = [None] * len(document)
        summary_of[0] = self.root
        self.root.count = 1
        for node in document.nodes[1:]:
            parent_summary = summary_of[node.parent_index]
            assert parent_summary is not None
            child = parent_summary.children.get(node.tag)
            if child is None:
                child = GuideNode(
                    tag=node.tag, depth=parent_summary.depth + 1
                )
                parent_summary.children[node.tag] = child
                self._size += 1
            child.count += 1
            summary_of[node.index] = child

    def __len__(self) -> int:
        """Number of distinct label paths in the document."""
        return self._size

    # -- navigation ------------------------------------------------------------

    def nodes(self) -> list[GuideNode]:
        result = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            result.append(node)
            stack.extend(node.children.values())
        return result

    def paths(self) -> list[tuple[str, ...]]:
        """All distinct root paths as tag tuples."""
        result: list[tuple[str, ...]] = []

        def walk(node: GuideNode, prefix: tuple[str, ...]) -> None:
            path = prefix + (node.tag,)
            result.append(path)
            for child in node.children.values():
                walk(child, path)

        walk(self.root, ())
        return result

    def count_of(self, path: tuple[str, ...] | list[str]) -> int:
        """Instances of the exact root path ``path`` (0 if absent)."""
        node = self.root
        if not path or path[0] != node.tag:
            return 0
        for tag in path[1:]:
            node = node.child(tag)
            if node is None:
                return 0
        return node.count

    # -- pruning --------------------------------------------------------------------

    def may_match(self, pattern: Pattern) -> bool:
        """False means the pattern certainly has no match in the document.

        Embeds the pattern into the summary: an embedding of the pattern
        into the document induces one into the DataGuide (same axes over
        summary paths), so summary-unsatisfiable implies
        document-unsatisfiable.  True is *not* a match guarantee (the
        summary merges instances), only the absence of a cheap refutation.
        """
        return self._embeds(pattern.root, self._descendants_pool(self.root))

    def _descendants_pool(self, origin: GuideNode) -> list[GuideNode]:
        pool = []
        stack = list(origin.children.values())
        while stack:
            node = stack.pop()
            pool.append(node)
            stack.extend(node.children.values())
        return pool + [origin]

    def _embeds(self, qnode: PatternNode, pool: list[GuideNode]) -> bool:
        for candidate in pool:
            if candidate.tag != qnode.tag:
                continue
            if self._embeds_below(qnode, candidate):
                return True
        return False

    def _embeds_below(self, qnode: PatternNode, at: GuideNode) -> bool:
        for child in qnode.children:
            if child.axis.is_pc:
                pool = list(at.children.values())
            else:
                pool = [
                    node
                    for node in self._descendants_pool(at)
                    if node is not at
                ]
            if not self._embeds(child, pool):
                return False
        return True
