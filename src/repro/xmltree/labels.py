"""Region-label algebra (Section II of the paper).

Each node in an XML data tree carries a 3-tuple label ``<start, end, level>``
assigned by a pre/post traversal counter:

* ``start`` — position of the node's start tag in document order,
* ``end``   — position of the node's end tag (``end > start`` and the region
  ``[start, end]`` strictly contains the regions of all descendants),
* ``level`` — depth of the node (root has level 0 in this implementation).

With these labels the structural relationships used throughout the paper are
decided in constant time:

* ``a`` is an **ancestor** of ``b``  iff ``a.start < b.start and b.end < a.end``;
* ``a`` is the **parent** of ``b``   iff additionally ``a.level == b.level - 1``;
* ``a'`` is a **following** node of ``a`` iff ``a'.start > a.end``.

The functions below accept any objects exposing ``start``, ``end`` and
``level`` attributes (both :class:`repro.xmltree.document.Node` and the
storage-layer entry records satisfy this), so the same algebra is shared by
the document layer, the storage schemes and the join algorithms.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable


@runtime_checkable
class Labelled(Protocol):
    """Anything carrying a region label."""

    start: int
    end: int
    level: int


def is_ancestor(a: Labelled, b: Labelled) -> bool:
    """Return True iff ``a`` is a proper ancestor of ``b``."""
    return a.start < b.start and b.end < a.end


def is_descendant(a: Labelled, b: Labelled) -> bool:
    """Return True iff ``a`` is a proper descendant of ``b``."""
    return is_ancestor(b, a)


def is_parent(a: Labelled, b: Labelled) -> bool:
    """Return True iff ``a`` is the parent of ``b``."""
    return is_ancestor(a, b) and a.level == b.level - 1


def is_child(a: Labelled, b: Labelled) -> bool:
    """Return True iff ``a`` is a child of ``b``."""
    return is_parent(b, a)

def is_following(after: Labelled, before: Labelled) -> bool:
    """Return True iff ``after`` is a following node of ``before``.

    Following means the entire region of ``after`` starts after ``before``
    closes; preceding/ancestor/descendant nodes are excluded.
    """
    return after.start > before.end


def region_contains(outer: Labelled, inner: Labelled) -> bool:
    """Return True iff the region of ``outer`` contains ``inner`` (non-strict).

    Used for self-or-ancestor style checks; a node contains itself.
    """
    return outer.start <= inner.start and inner.end <= outer.end


def satisfies_axis(ancestor: Labelled, descendant: Labelled, is_pc: bool) -> bool:
    """Check one query edge between two data nodes.

    ``is_pc`` selects the parent-child axis; otherwise ancestor-descendant.
    """
    if is_pc:
        return is_parent(ancestor, descendant)
    return is_ancestor(ancestor, descendant)


def compare_document_order(a: Labelled, b: Labelled) -> int:
    """Three-way comparison of two nodes by document order (start label)."""
    if a.start < b.start:
        return -1
    if a.start > b.start:
        return 1
    return 0
