"""The picklable unit of work shared by sequential and parallel paths.

An :class:`EvalJob` carries everything one evaluation needs as plain
strings and ints — query/view xpaths, engine combo, mode — so it crosses
a process boundary without dragging documents or views along; workers
rebuild patterns from text and read views from their own attached store.

:func:`run_job` is the single execution primitive: it evaluates the job
**cold**, dropping the buffer pool before every repeat.  Cold-per-job is
the contract that makes parallel evaluation deterministic: the I/O
statistics of a job become a pure function of the job itself (page
layout and pool capacity being equal), independent of which process runs
it or what ran before it — so a fan-out over N workers merges to
byte-identical counters as a sequential pass over the same jobs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from repro.algorithms.base import Counters, Mode
from repro.algorithms.engine import Algorithm, combo_label, evaluate
from repro.errors import ServiceError, StorageError
from repro.storage.catalog import Scheme, ViewCatalog
from repro.storage.pager import IOStats
from repro.tpq.parser import parse_pattern
from repro.tpq.pattern import Pattern


@dataclass(frozen=True)
class EvalJob:
    """One (query × views × engine combo × mode) evaluation request."""

    index: int
    query: str
    views: tuple[tuple[str, str | None], ...]
    algorithm: str
    scheme: str
    mode: str = "memory"
    emit_matches: bool = True
    repeats: int = 1
    query_name: str | None = None
    #: MVCC pin (DESIGN.md §16): the store generation this job must be
    #: answered from.  ``None`` means "whatever the executing catalog
    #: holds" (the pre-MVCC behaviour).  Workers use it to pick which
    #: generation to attach; :func:`run_job` passes it to the engine as
    #: ``as_of`` so a mismatched catalog fails typed instead of
    #: answering from the wrong snapshot.
    generation: int | None = None

    @classmethod
    def from_patterns(
        cls,
        index: int,
        query: Pattern | str,
        views: Sequence[Pattern],
        algorithm: Algorithm | str,
        scheme: Scheme | str,
        mode: Mode | str = Mode.MEMORY,
        emit_matches: bool = True,
        repeats: int = 1,
        query_name: str | None = None,
        generation: int | None = None,
    ) -> "EvalJob":
        if isinstance(query, str):
            query_text = query
        else:
            query_text = query.to_xpath()
            query_name = query_name or query.name
        return cls(
            index=index,
            query=query_text,
            query_name=query_name,
            views=tuple((view.to_xpath(), view.name) for view in views),
            algorithm=Algorithm.parse(algorithm).value,
            scheme=Scheme.parse(scheme).value,
            mode=Mode.parse(mode).value,
            emit_matches=emit_matches,
            repeats=repeats,
            generation=generation,
        )

    @property
    def combo(self) -> str:
        return combo_label(self.algorithm, self.scheme)

    def patterns(self) -> tuple[Pattern, list[Pattern]]:
        """Rebuild the query and view patterns from their canonical text."""
        query = parse_pattern(self.query, name=self.query_name)
        views = [
            parse_pattern(xpath, name=name) for xpath, name in self.views
        ]
        return query, views


@dataclass
class JobResult:
    """What a worker ships back: match keys plus the per-run accounting."""

    index: int
    combo: str
    match_keys: list[tuple[int, ...]]
    match_count: int
    counters: Counters
    io: IOStats
    elapsed_s: float
    output_seconds: float = 0.0
    peak_buffer_entries: int = 0
    peak_buffer_bytes: int = 0


@dataclass(frozen=True)
class JobFailure:
    """A job that produced a typed failure instead of a result.

    Plain picklable data, like :class:`EvalJob`: workers ship failures
    back in the same list as results, so one corrupt view never poisons
    the whole stripe.  ``kind`` is the circuit-breaker taxonomy:
    ``store-corrupt`` (integrity — quarantines immediately),
    ``worker-lost`` / ``timeout`` / ``error`` (operational — quarantine
    at the breaker threshold).
    """

    index: int
    kind: str
    message: str
    #: view names the failing job was reading (breaker attribution).
    views: tuple[str, ...] = ()
    #: page ids implicated by a checksum failure, when known.
    pages: tuple[int, ...] = ()


def run_job(
    catalog: ViewCatalog, job: EvalJob, expect_warm: bool = False
) -> JobResult:
    """Evaluate ``job`` against ``catalog`` with a cold buffer pool.

    With ``repeats > 1`` the evaluation runs that many times and
    ``elapsed_s`` is the median (counters and I/O are deterministic per
    repeat, so the last run's are kept).

    Args:
        catalog: the view catalog (in-memory or attached from a store).
        job: what to evaluate.
        expect_warm: promise that every view the job needs is already
            materialized.  Violations raise :class:`ServiceError`
            *before* any evaluation — in a worker attached read-only to
            a shared store, materializing would write pages into the
            store file, so the guard must fire first.
    """
    query, views = job.patterns()
    if expect_warm:
        missing = []
        for view in views:
            try:
                catalog.get(view, job.scheme)
            except StorageError:
                missing.append(view.to_xpath())
        if missing:
            raise ServiceError(
                f"job {job.index} ({job.combo}) needs views that were not"
                f" warmed up: {missing}; materialize them before the timed"
                " region (QueryService.warmup / warmup_jobs)"
            )
    pool = catalog.pager.pool
    materializations_before = catalog.materializations
    timings: list[float] = []
    result = None
    for __ in range(max(job.repeats, 1)):
        pool.clear()
        begin = time.perf_counter()
        result = evaluate(
            query, catalog, views, job.algorithm, job.scheme,
            mode=job.mode, emit_matches=job.emit_matches,
            as_of=job.generation,
        )
        timings.append(time.perf_counter() - begin)
    assert result is not None
    if expect_warm and catalog.materializations != materializations_before:
        raise ServiceError(
            f"job {job.index} ({job.combo}) materialized views inside the"
            " timed region despite a warm-up promise"
        )
    timings.sort()
    return JobResult(
        index=job.index,
        combo=job.combo,
        match_keys=result.match_keys(),
        match_count=result.match_count,
        counters=result.counters,
        io=result.io,
        elapsed_s=timings[len(timings) // 2],
        output_seconds=result.output_seconds,
        peak_buffer_entries=result.peak_buffer_entries,
        peak_buffer_bytes=result.peak_buffer_bytes,
    )


def merge_results(
    results: Sequence[JobResult],
) -> tuple[Counters, IOStats]:
    """Fold per-job counters/I/O in job-index order (the deterministic
    merge contract: same jobs → same aggregate, however they were
    scheduled)."""
    counters = Counters()
    io = IOStats()
    for result in sorted(results, key=lambda r: r.index):
        counters.merge(result.counters)
        io.merge(result.io)
    return counters, io
