"""Process-pool worker entry point.

Kept in its own module so it stays importable under both ``fork`` and
``spawn`` start methods: the executor pickles only the function
reference plus plain-data jobs, never a catalog or a service.  Each
worker task attaches the persisted store with :func:`load_catalog` —
page bytes are shared through the file and decoded lazily via the
worker's own buffer pool, so nothing heavyweight ever crosses the
process boundary in either direction.
"""

from __future__ import annotations

import os
from typing import Sequence

from repro.service.jobs import EvalJob, JobResult, run_job
from repro.storage.catalog import ViewCatalog
from repro.storage.persistence import load_catalog

#: Per-process store attachments, keyed by (store path, catalog version).
#: A service keeps its worker pool alive across batches; re-parsing the
#: store's document XML on every batch would dominate small batches, so
#: each worker attaches once per snapshot version and reuses the catalog
#: until the parent rewrites the snapshot (version bump → re-attach).
_ATTACHED: dict[tuple[str, int], ViewCatalog] = {}


def run_worker_jobs(
    store_dir: str | os.PathLike,
    jobs: Sequence[EvalJob],
    pool_capacity: int = 64,
    store_version: int | None = None,
) -> list[JobResult]:
    """Attach the store and evaluate ``jobs`` in order.

    ``pool_capacity`` must mirror the parent's buffer-pool capacity:
    physical-read counts depend on pool size, and the deterministic-merge
    contract needs workers to observe the same residency behaviour a
    sequential run would.  (Jobs themselves always run cold — the memoized
    attachment keeps decoded pages and packed columns, but
    :func:`~repro.service.jobs.run_job` drops the buffer pool per repeat,
    so reuse never changes any counter.)

    ``store_version`` enables the per-process attachment memo: pass the
    catalog version the snapshot was saved at, and the worker re-attaches
    only when it changes.  ``None`` keeps the one-shot behaviour (attach,
    evaluate, close).

    Every view a job references must already exist in the store
    (:func:`repro.service.jobs.run_job` enforces ``expect_warm``): a
    worker must never materialize, because its pager is attached
    read-write to a file shared with sibling workers.
    """
    path = os.fspath(store_dir)
    if store_version is None:
        catalog = load_catalog(path, pool_capacity=pool_capacity)
        try:
            return [run_job(catalog, job, expect_warm=True) for job in jobs]
        finally:
            catalog.close()
    key = (path, store_version)
    catalog = _ATTACHED.get(key)
    if catalog is None:
        for stale in [k for k in _ATTACHED if k[0] == path]:
            _ATTACHED.pop(stale).close()
        catalog = load_catalog(path, pool_capacity=pool_capacity)
        _ATTACHED[key] = catalog
    return [run_job(catalog, job, expect_warm=True) for job in jobs]
