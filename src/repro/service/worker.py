"""Process-pool worker entry point.

Kept in its own module so it stays importable under both ``fork`` and
``spawn`` start methods: the executor pickles only the function
reference plus plain-data jobs, never a catalog or a service.  Each
worker task attaches the persisted store with :func:`load_catalog` —
page bytes are shared through the file and decoded lazily via the
worker's own buffer pool, so nothing heavyweight ever crosses the
process boundary in either direction.

MVCC attachment (DESIGN.md §16): the per-process memo is keyed by
``(store path, generation)``.  The parent pins the generation its batch
must be answered from and ships it with every stripe, so a maintenance
commit landing a new generation mid-batch cannot move a worker off its
snapshot — the pinned generation's manifest stays loadable from the
store's ``generations/`` archive, and later stripes at the new
generation simply attach under a fresh memo key, with no stop-the-world
reattach.  Stores without a generation archive (the service's temp
snapshot of an in-memory catalog) are rewritten in place, so attaching
one drops every other memo entry for that path.

Failure semantics: a job that trips a checksum (``StoreCorrupt``) turns
into a :class:`~repro.service.jobs.JobFailure` in the returned list, so
one corrupt view never takes down its stripe-mates; a job killed by an
injected ``worker`` fault exits the process (the parent sees
``BrokenProcessPool`` and resubmits the unfinished jobs with capped
retries).  The parent ships its installed :class:`FaultPlan` along with
the stripe, salted by the attempt number, so chaos runs stay
deterministic across respawned workers.
"""

from __future__ import annotations

import os
import pathlib
from typing import Sequence

from repro.errors import StorageError, StoreCorrupt
from repro.resilience import faults
from repro.resilience.faults import FaultPlan
from repro.service.jobs import EvalJob, JobFailure, JobResult, run_job
from repro.storage.catalog import ViewCatalog
from repro.storage.persistence import load_catalog, read_store_version

#: Per-process store attachments: ``(path, generation)`` -> (parent
#: catalog version at attach time, attached catalog).  A service keeps
#: its worker pool alive across batches; re-parsing the store's document
#: XML on every batch would dominate small batches, so each worker
#: attaches a generation once and reuses the catalog for every stripe
#: pinned to it.  Generations are immutable once published, so a memo
#: hit can never serve a different store state than a fresh attach —
#: the parent version is kept only to catch the same *path* being
#: re-saved as a brand-new store (tmp-dir reuse).
_ATTACHED: dict[tuple[str, int], tuple[int | None, ViewCatalog]] = {}

#: Distinct generations a worker keeps attached at once; the oldest
#: entries are closed beyond this (suspended readers page slowly while
#: commits land, so a small window covers the live set).
_MAX_ATTACHED = 8


def _job_views(job: EvalJob) -> tuple[str, ...]:
    return tuple(name or xpath for xpath, name in job.views)


def _attach_failure(exc: StoreCorrupt, job: EvalJob) -> JobFailure:
    return JobFailure(
        index=job.index,
        kind="store-corrupt",
        message=str(exc),
        views=exc.views or _job_views(job),
        pages=exc.pages,
    )


def _run_one(
    catalog: ViewCatalog, job: EvalJob
) -> JobResult | JobFailure:
    state = faults.STATE
    if state is not None:
        state.worker_job(job.index)  # may kill or stall this process
    try:
        return run_job(catalog, job, expect_warm=True)
    except StoreCorrupt as exc:
        return JobFailure(
            index=job.index,
            kind="store-corrupt",
            message=str(exc),
            views=exc.views or _job_views(job),
            pages=exc.pages,
        )


def _evict_path(path: str, keep: int | None = None) -> None:
    """Close every memoized attachment of ``path`` except ``keep``."""
    doomed = [
        key for key in _ATTACHED
        if key[0] == path and key[1] != keep
    ]
    for key in doomed:
        __, catalog = _ATTACHED.pop(key)
        catalog.close()


def _evict_overflow() -> None:
    while len(_ATTACHED) > _MAX_ATTACHED:
        key = next(iter(_ATTACHED))  # oldest insertion
        __, catalog = _ATTACHED.pop(key)
        catalog.close()


def _attach(
    path: str,
    generation: int,
    parent_version: int | None,
    pool_capacity: int,
) -> ViewCatalog:
    key = (path, generation)
    memo = _ATTACHED.get(key)
    if memo is not None:
        attached_parent, catalog = memo
        if attached_parent == parent_version:
            return catalog
        # Same path, same generation number, different parent catalog:
        # the path was re-saved as a new store (generation numbering
        # restarted) — everything memoized under it is stale.
        _evict_path(path)
    if not (pathlib.Path(path) / "generations").is_dir():
        # No archive: this store is rewritten in place on every save,
        # so any other attached generation of it points at dead pages.
        _evict_path(path)
    catalog = load_catalog(
        path, pool_capacity=pool_capacity, generation=generation
    )
    _ATTACHED[key] = (parent_version, catalog)
    _evict_overflow()
    return catalog


def run_worker_jobs(
    store_dir: str | os.PathLike,
    jobs: Sequence[EvalJob],
    pool_capacity: int = 64,
    store_version: int | None = None,
    fault_plan: FaultPlan | None = None,
    fault_salt: int = 0,
    generation: int | None = None,
) -> list[JobResult | JobFailure]:
    """Attach the store and evaluate ``jobs`` in order.

    ``pool_capacity`` must mirror the parent's buffer-pool capacity:
    physical-read counts depend on pool size, and the deterministic-merge
    contract needs workers to observe the same residency behaviour a
    sequential run would.  (Jobs themselves always run cold — the memoized
    attachment keeps decoded pages and packed columns, but
    :func:`~repro.service.jobs.run_job` drops the buffer pool per repeat,
    so reuse never changes any counter.)

    ``generation`` pins the whole stripe to one published store
    generation (a job's own ``generation`` field overrides it per job);
    ``None`` resolves the store's current generation once, up front.
    ``store_version`` enables the per-process attachment memo: pass the
    catalog version the snapshot was saved at, and the worker re-attaches
    only when it changes.  ``None`` keeps the one-shot behaviour (attach,
    evaluate, close).

    Every view a job references must already exist in the store
    (:func:`repro.service.jobs.run_job` enforces ``expect_warm``): a
    worker must never materialize, because its pager is attached
    read-write to a file shared with sibling workers.
    """
    if fault_plan is not None:
        faults.install(fault_plan, salt=fault_salt)
    path = os.fspath(store_dir)
    if store_version is None and generation is None:
        try:
            catalog = load_catalog(path, pool_capacity=pool_capacity)
        except StoreCorrupt as exc:
            return [_attach_failure(exc, job) for job in jobs]
        try:
            return [_run_one(catalog, job) for job in jobs]
        finally:
            catalog.close()
    if generation is None:
        # One manifest read per stripe, *before* any job runs: every
        # job without its own pin answers from this one generation even
        # if a commit lands while the stripe is in flight.
        generation, __ = read_store_version(path)
    return [
        _attach_and_run(
            path,
            generation if job.generation is None else job.generation,
            store_version, pool_capacity, job,
        )
        for job in jobs
    ]


def _attach_and_run(
    path: str,
    pinned: int,
    store_version: int | None,
    pool_capacity: int,
    job: EvalJob,
) -> JobResult | JobFailure:
    """One job against its pinned generation; attach errors come back
    typed so a bad generation never takes down its stripe-mates."""
    try:
        catalog = _attach(path, pinned, store_version, pool_capacity)
    except StoreCorrupt as exc:
        # The store is unreadable at attach: the job fails typed
        # rather than hanging or crashing the pool.
        return _attach_failure(exc, job)
    except StorageError as exc:
        # Pinned generation reaped (or never published): typed per-job
        # failure.
        return JobFailure(
            index=job.index,
            kind="error",
            message=str(exc),
            views=_job_views(job),
        )
    return _run_one(catalog, job)
