"""Process-pool worker entry point.

Kept in its own module so it stays importable under both ``fork`` and
``spawn`` start methods: the executor pickles only the function
reference plus plain-data jobs, never a catalog or a service.  Each
worker task attaches the persisted store with :func:`load_catalog` —
page bytes are shared through the file and decoded lazily via the
worker's own buffer pool, so nothing heavyweight ever crosses the
process boundary in either direction.

Failure semantics: a job that trips a checksum (``StoreCorrupt``) turns
into a :class:`~repro.service.jobs.JobFailure` in the returned list, so
one corrupt view never takes down its stripe-mates; a job killed by an
injected ``worker`` fault exits the process (the parent sees
``BrokenProcessPool`` and resubmits the unfinished jobs with capped
retries).  The parent ships its installed :class:`FaultPlan` along with
the stripe, salted by the attempt number, so chaos runs stay
deterministic across respawned workers.
"""

from __future__ import annotations

import os
from typing import Sequence

from repro.errors import StoreCorrupt
from repro.resilience import faults
from repro.resilience.faults import FaultPlan
from repro.service.jobs import EvalJob, JobFailure, JobResult, run_job
from repro.storage.catalog import ViewCatalog
from repro.storage.persistence import load_catalog, read_store_version

#: Per-process store attachments: path -> (parent catalog version,
#: on-disk ``store_version`` at attach time, attached catalog).
#: A service keeps its worker pool alive across batches; re-parsing the
#: store's document XML on every batch would dominate small batches, so
#: each worker attaches once and reuses the catalog until either marker
#: moves.  The parent version catches view-set growth (snapshot re-saved
#: under the same path); the on-disk version catches maintenance commits
#: that rewrite the store underneath a live attachment — the manifest is
#: re-read on every call, so a worker can never serve pages from a store
#: generation the manifest no longer describes.
_ATTACHED: dict[str, tuple[int, int, ViewCatalog]] = {}


def _job_views(job: EvalJob) -> tuple[str, ...]:
    return tuple(name or xpath for xpath, name in job.views)


def _attach_failure(exc: StoreCorrupt, job: EvalJob) -> JobFailure:
    return JobFailure(
        index=job.index,
        kind="store-corrupt",
        message=str(exc),
        views=exc.views or _job_views(job),
        pages=exc.pages,
    )


def _run_one(
    catalog: ViewCatalog, job: EvalJob
) -> JobResult | JobFailure:
    state = faults.STATE
    if state is not None:
        state.worker_job(job.index)  # may kill or stall this process
    try:
        return run_job(catalog, job, expect_warm=True)
    except StoreCorrupt as exc:
        return JobFailure(
            index=job.index,
            kind="store-corrupt",
            message=str(exc),
            views=exc.views or _job_views(job),
            pages=exc.pages,
        )


def run_worker_jobs(
    store_dir: str | os.PathLike,
    jobs: Sequence[EvalJob],
    pool_capacity: int = 64,
    store_version: int | None = None,
    fault_plan: FaultPlan | None = None,
    fault_salt: int = 0,
) -> list[JobResult | JobFailure]:
    """Attach the store and evaluate ``jobs`` in order.

    ``pool_capacity`` must mirror the parent's buffer-pool capacity:
    physical-read counts depend on pool size, and the deterministic-merge
    contract needs workers to observe the same residency behaviour a
    sequential run would.  (Jobs themselves always run cold — the memoized
    attachment keeps decoded pages and packed columns, but
    :func:`~repro.service.jobs.run_job` drops the buffer pool per repeat,
    so reuse never changes any counter.)

    ``store_version`` enables the per-process attachment memo: pass the
    catalog version the snapshot was saved at, and the worker re-attaches
    only when it changes.  ``None`` keeps the one-shot behaviour (attach,
    evaluate, close).

    Every view a job references must already exist in the store
    (:func:`repro.service.jobs.run_job` enforces ``expect_warm``): a
    worker must never materialize, because its pager is attached
    read-write to a file shared with sibling workers.
    """
    if fault_plan is not None:
        faults.install(fault_plan, salt=fault_salt)
    path = os.fspath(store_dir)
    if store_version is None:
        try:
            catalog = load_catalog(path, pool_capacity=pool_capacity)
        except StoreCorrupt as exc:
            return [_attach_failure(exc, job) for job in jobs]
        try:
            return [_run_one(catalog, job) for job in jobs]
        finally:
            catalog.close()
    disk_version, __ = read_store_version(path)
    memo = _ATTACHED.get(path)
    if memo is not None:
        parent_version, attached_disk, catalog = memo
        if parent_version != store_version or attached_disk != disk_version:
            _ATTACHED.pop(path)
            catalog.close()
            memo = None
    if memo is None:
        try:
            catalog = load_catalog(path, pool_capacity=pool_capacity)
        except StoreCorrupt as exc:
            # The store is unreadable at attach: every job in the stripe
            # fails typed rather than hanging or crashing the pool.
            return [_attach_failure(exc, job) for job in jobs]
        _ATTACHED[path] = (store_version, disk_version, catalog)
    return [_run_one(catalog, job) for job in jobs]
