"""Plan-level common-subexpression elimination for batched queries.

The shared-scan batch executor (``QueryService.evaluate_batch`` /
``evaluate_parallel``) canonicalizes every query in a batch into an
**eval node** — the full identity of one engine run: canonical query
text, the exact view list (order included), engine combo, mode and
emit flag.  Nodes are hash-consed across the batch, each distinct node
is executed exactly once, and its match stream plus recorded work/I-O
counters fan out to every consumer query.

Replay accounting
-----------------
The determinism contract (:mod:`repro.service.jobs`) makes a job's
counters and I/O a pure function of the job itself, so a duplicate's
independent evaluation would have produced byte-identical accounting to
the first's.  Fan-out therefore *replays* the recorded counters to every
consumer — per-query outcomes and the merged batch totals stay
byte-identical to the independent path — while :class:`SharedStats`
separately records the work actually executed, which is what the
benchmark's amortized-speedup numbers report.

``REPRO_SHARED=0`` forces the independent path everywhere (checked at
call time), which is how the differential tests pin the equivalence.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field

from repro.algorithms.base import Counters, Mode
from repro.planner import Plan
from repro.service.jobs import JobResult
from repro.storage.pager import IOStats


def shared_enabled() -> bool:
    """Global default for the shared-scan batch path.

    ``REPRO_SHARED=0`` (checked per batch, not cached) forces the
    independent per-query path — the reference behaviour the
    differential tests compare the shared executor against.
    """
    return os.environ.get("REPRO_SHARED", "1").strip().lower() not in (
        "0", "false", "no", "off",
    )


def node_key(plan: Plan, mode: Mode, emit_matches: bool) -> tuple:
    """Canonical identity of one eval node.

    Everything that influences an engine run's output *and accounting*
    is part of the key: the canonical query, the exact view list in plan
    order (view order drives cursor construction and page layout), the
    engine combo, the output mode and the emit flag.  Two queries whose
    plans agree on all of these produce byte-identical results and
    counters, so they may share one execution.
    """
    algorithm = getattr(plan.algorithm, "value", plan.algorithm)
    scheme = getattr(plan.scheme, "value", plan.scheme)
    return (
        plan.query.to_xpath(),
        tuple((view.to_xpath(), view.name) for view in plan.all_views),
        str(algorithm),
        str(scheme),
        mode.value,
        bool(emit_matches),
    )


def node_digest(key: tuple) -> str:
    """Stable hex digest of a node key (the stream cache's "node hash")."""
    return hashlib.sha1(repr(key).encode("utf-8")).hexdigest()


@dataclass
class SharedNode:
    """One distinct eval node within a batch plus its consumer queries."""

    ordinal: int
    digest: str
    plan: Plan
    #: batch positions answered by this node, in input order.
    consumers: list[int]
    #: filled when the stream cache already held this node's stream.
    replayed: JobResult | None = None

    @property
    def first(self) -> int:
        return self.consumers[0]


@dataclass
class SharedStats:
    """Actual work executed by the shared path (monotone per service).

    ``executed`` / ``executed_io`` aggregate only the runs that really
    happened; the difference against the batch's merged (replayed)
    counters is the work the CSE layer saved.
    """

    batches: int = 0
    queries: int = 0
    distinct_nodes: int = 0
    jobs_run: int = 0
    stream_hits: int = 0
    #: consumer queries answered by replaying another run's stream.
    replayed_queries: int = 0
    executed: Counters = field(default_factory=Counters)
    executed_io: IOStats = field(default_factory=IOStats)

    def as_dict(self) -> dict[str, object]:
        return {
            "batches": self.batches,
            "queries": self.queries,
            "distinct_nodes": self.distinct_nodes,
            "jobs_run": self.jobs_run,
            "stream_hits": self.stream_hits,
            "replayed_queries": self.replayed_queries,
            "executed_work": self.executed.work,
            "executed_elements_scanned": self.executed.elements_scanned,
            "executed_logical_reads": self.executed_io.logical_reads,
            "executed_physical_reads": self.executed_io.physical_reads,
        }
