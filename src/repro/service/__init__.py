"""Multi-process query service with plan and result caching.

Public surface::

    from repro.service import QueryService

    service = QueryService(catalog)          # or QueryService.open(store)
    service.register("//a//b")
    service.warmup(queries)
    one   = service.evaluate("//a//b//c")
    batch = service.evaluate_batch(queries)
    fast  = service.evaluate_parallel(queries, workers=4)

``evaluate_parallel`` is byte-identical to ``evaluate_batch`` in match
keys and merged work/I-O counters (see :mod:`repro.service.core` for the
determinism contract); :class:`EvalJob`/:func:`run_job` are the lower
level explicit-plan API the benchmark harness drives.

Both batch entry points default to the shared-scan executor
(:mod:`repro.service.shared`): duplicate eval nodes within (and across)
batches run once and replay to every consumer, with ``REPRO_SHARED=0``
or ``shared=False`` forcing the independent per-query path.

Preemptible serving sits next to the batch API: ``evaluate_quantum``
answers the first quantum of a query under a
:class:`~repro.algorithms.preempt.QuantumBudget` and — when suspended —
returns a :class:`QuantumOutcome` carrying an opaque continuation token;
``resume_quantum`` picks the run back up, one quantum per call, until
``done``.  Concatenated pages are byte-identical to the one-shot
answer, and stale tokens (maintenance commit, pool respawn, shutdown)
die as typed :class:`~repro.errors.ContinuationExpired`.  The asyncio
HTTP front end in :mod:`repro.server` is a thin shell over these two
calls.

``QueryService(..., advisor=True)`` additionally records every answered
query into a :class:`~repro.selection.online.WorkloadLog` and (on a
configurable cadence, or via explicit ``advisor_cycle()`` calls)
auto-materializes/drops views under a storage budget using measured
counters — the online adaptive view advisor
(:mod:`repro.selection.online`); ``REPRO_ADVISOR=0`` disables it.
"""

from repro.selection.online import (
    Measurement,
    WorkloadLog,
    advisor_enabled,
)
from repro.service.continuation import decode_token, encode_token
from repro.service.core import (
    BatchResult,
    QuantumOutcome,
    QueryOutcome,
    QueryService,
)
from repro.service.jobs import (
    EvalJob,
    JobFailure,
    JobResult,
    merge_results,
    run_job,
)
from repro.service.shared import (
    SharedStats,
    node_digest,
    node_key,
    shared_enabled,
)
from repro.service.streams import StreamCache
from repro.service.worker import run_worker_jobs

__all__ = [
    "BatchResult",
    "EvalJob",
    "JobFailure",
    "JobResult",
    "Measurement",
    "QuantumOutcome",
    "QueryOutcome",
    "QueryService",
    "SharedStats",
    "StreamCache",
    "WorkloadLog",
    "advisor_enabled",
    "decode_token",
    "encode_token",
    "merge_results",
    "node_digest",
    "node_key",
    "run_job",
    "run_worker_jobs",
    "shared_enabled",
]
