"""Multi-process query service with plan and result caching.

Public surface::

    from repro.service import QueryService

    service = QueryService(catalog)          # or QueryService.open(store)
    service.register("//a//b")
    service.warmup(queries)
    one   = service.evaluate("//a//b//c")
    batch = service.evaluate_batch(queries)
    fast  = service.evaluate_parallel(queries, workers=4)

``evaluate_parallel`` is byte-identical to ``evaluate_batch`` in match
keys and merged work/I-O counters (see :mod:`repro.service.core` for the
determinism contract); :class:`EvalJob`/:func:`run_job` are the lower
level explicit-plan API the benchmark harness drives.
"""

from repro.service.core import BatchResult, QueryOutcome, QueryService
from repro.service.jobs import (
    EvalJob,
    JobFailure,
    JobResult,
    merge_results,
    run_job,
)
from repro.service.worker import run_worker_jobs

__all__ = [
    "BatchResult",
    "EvalJob",
    "JobFailure",
    "JobResult",
    "QueryOutcome",
    "QueryService",
    "merge_results",
    "run_job",
    "run_worker_jobs",
]
