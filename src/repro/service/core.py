"""The multi-process query service.

:class:`QueryService` is the layer the ROADMAP's "heavy traffic" goal
asks for on top of the single-query engine: it owns one materialized
:class:`~repro.storage.catalog.ViewCatalog` (built in memory, or attached
from a :func:`~repro.storage.persistence.save_catalog` store), answers
queries through a plan-cached :class:`~repro.planner.Planner`, and fans
independent queries out across a :class:`~concurrent.futures.ProcessPoolExecutor`
whose workers reattach the persisted store and run the existing engine.

Determinism contract
--------------------
Every job runs **cold** (buffer pool dropped per repeat, stats reset per
run) and the per-job counters are folded in job-index order, so
``evaluate_parallel`` returns match keys and aggregated work/I-O counters
byte-identical to ``evaluate_batch`` over the same queries — whatever the
worker count or scheduling order.  Wall-clock fields are the only
non-deterministic outputs.

Cache layers
------------
* the planner's **plan cache** (parse → cover → :class:`Plan`, memoized
  per catalog generation; invalidated by ``register`` /
  ``adopt_catalog_views``);
* an optional keyed **result cache** in the service itself
  (``result_cache_size > 0``), invalidated explicitly or whenever the
  view set changes.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Sequence

from repro.algorithms.base import Counters, Mode
from repro.algorithms.engine import Algorithm, combo_label
from repro.caching import CacheStats, LRUCache
from repro.errors import ServiceError
from repro.planner import Plan, Planner
from repro.service.jobs import EvalJob, JobResult, merge_results, run_job
from repro.service.worker import run_worker_jobs
from repro.storage.catalog import Scheme, ViewCatalog
from repro.storage.pager import IOStats
from repro.storage.persistence import load_catalog, save_catalog
from repro.tpq.parser import parse_pattern
from repro.tpq.pattern import Pattern


@dataclass
class QueryOutcome:
    """One answered query: canonical text, match keys and accounting."""

    query: str
    combo: str
    match_keys: list[tuple[int, ...]]
    match_count: int
    counters: Counters
    io: IOStats
    elapsed_s: float
    cached: bool = False
    refuted: bool = False
    plan_views: list[str] = field(default_factory=list)


@dataclass
class BatchResult:
    """Outcomes of one batch plus the deterministic counter merge."""

    outcomes: list[QueryOutcome]
    counters: Counters
    io: IOStats
    elapsed_s: float

    @property
    def match_counts(self) -> list[int]:
        return [outcome.match_count for outcome in self.outcomes]


class QueryService:
    """Plan-cached, optionally parallel query answering over one catalog.

    Args:
        catalog: an existing in-memory catalog to serve from (mutually
            exclusive with ``store_path``).
        store_path: a ``save_catalog`` store directory to attach
            read-mostly; the service owns (and closes) the loaded catalog.
        scheme / algorithm: defaults handed to the planner.
        plan_cache_size: LRU size of the planner's plan cache.
        result_cache_size: LRU size of the keyed result cache; 0 disables.
        prune_with_dataguide: refute impossible queries before running.
    """

    def __init__(
        self,
        catalog: ViewCatalog | None = None,
        *,
        store_path: str | None = None,
        scheme: Scheme | str = Scheme.LINKED_PARTIAL,
        algorithm: Algorithm | str = Algorithm.VIEWJOIN,
        plan_cache_size: int = 128,
        result_cache_size: int = 0,
        prune_with_dataguide: bool = True,
    ):
        if (catalog is None) == (store_path is None):
            raise ServiceError(
                "pass exactly one of `catalog` or `store_path`"
            )
        self._owns_catalog = store_path is not None
        self._store_path = str(store_path) if store_path else None
        if catalog is None:
            # Finish any update-log tail an interrupted maintenance
            # commit left behind before attaching.
            from repro.maintenance.engine import recover_store

            recover_store(store_path)
            catalog = load_catalog(store_path)
        self.catalog = catalog
        #: Workers must replay the parent's pool residency behaviour.
        self.pool_capacity = catalog.pager.pool.capacity
        self.planner = Planner(
            catalog,
            scheme=scheme,
            algorithm=algorithm,
            prune_with_dataguide=prune_with_dataguide,
            plan_cache_size=plan_cache_size,
        )
        if self._store_path is not None:
            self.planner.adopt_catalog_views()
        self._store_version = catalog.version
        self._snapshot_dir: str | None = None
        self._snapshot_version: int | None = None
        self._result_cache = LRUCache(result_cache_size)
        self._executor: ProcessPoolExecutor | None = None
        self._executor_workers = 0

    @classmethod
    def open(cls, store_path, **kwargs) -> "QueryService":
        """Attach a service to a persisted view store."""
        return cls(store_path=str(store_path), **kwargs)

    # -- registration & invalidation ------------------------------------------

    def register(self, pattern: Pattern | str, name: str | None = None) -> Pattern:
        """Register (and materialize) a view; drops both cache layers."""
        pattern = self.planner.register(pattern, name=name)
        self.invalidate_results()
        return pattern

    def adopt_catalog_views(self) -> int:
        adopted = self.planner.adopt_catalog_views()
        if adopted:
            self.invalidate_results()
        return adopted

    def invalidate_results(self) -> int:
        """Drop the result cache (the catalog changed); returns how many
        entries were evicted."""
        return self._result_cache.invalidate()

    # -- maintenance ----------------------------------------------------------

    def apply_updates(self, deltas, force_rebuild: bool = False):
        """Commit document updates and repair every view (incremental
        view maintenance).

        Runs :func:`repro.maintenance.engine.apply_updates` against the
        served catalog, then restores the service's end-to-end
        consistency contract:

        * store-backed services log the deltas to the store's update log
          first and commit the repaired pages/manifest in place
          (``store_version`` bump), so pooled workers detect the rewrite
          and reattach;
        * the planner re-syncs (stale DataGuide and plans dropped,
          dropped views deregistered) and the keyed result cache is
          evicted — match keys embed region labels, which the commit
          just shifted.

        Returns the :class:`repro.maintenance.engine.MaintenanceReport`.
        """
        from repro.maintenance.engine import apply_updates as maintain
        from repro.maintenance.wal import WAL_FILENAME, UpdateLog
        from repro.storage.persistence import commit_store
        import pathlib

        wal = None
        if self._store_path is not None:
            wal = UpdateLog(pathlib.Path(self._store_path) / WAL_FILENAME)
        report = maintain(
            self.catalog, deltas, wal=wal, force_rebuild=force_rebuild
        )
        if report.deltas:
            if self._store_path is not None:
                commit_store(
                    self.catalog, self._store_path, wal_lsn=wal.tip()
                )
                self._store_version = self.catalog.version
            self.planner.sync_catalog()
            self.invalidate_results()
        return report

    @property
    def plan_cache_stats(self) -> CacheStats:
        return self.planner.plan_cache_stats

    @property
    def result_cache_stats(self) -> CacheStats:
        return self._result_cache.stats

    # -- warm-up --------------------------------------------------------------

    def warmup(self, queries: Sequence[Pattern | str]) -> int:
        """Materialize every view the given queries will need, exactly
        once per (view, scheme); returns how many materializations ran.

        After warm-up, evaluating those queries performs no
        materialization inside the timed region (enforced by
        :func:`~repro.service.jobs.run_job`).
        """
        before = self.catalog.materializations
        for query in queries:
            self._materialize_plan(self.planner.plan(query))
        return self.catalog.materializations - before

    def warmup_jobs(self, jobs: Sequence[EvalJob]) -> int:
        """Materialize each distinct (view, scheme) of explicit jobs once."""
        before = self.catalog.materializations
        # Insertion-ordered dict, not a set: materialization must follow
        # job order because page layout (and thus physical-read counts)
        # depends on the order views hit the store.
        seen: dict[tuple[str, str], None] = {}
        for job in jobs:
            for xpath, name in job.views:
                key = (name or xpath, job.scheme)
                if key in seen:
                    continue
                seen[key] = None
                self.catalog.add(
                    parse_pattern(xpath, name=name), job.scheme
                )
        return self.catalog.materializations - before

    def _materialize_plan(self, plan: Plan) -> None:
        for view in plan.all_views:
            self.catalog.add(view, plan.scheme)

    # -- evaluation -----------------------------------------------------------

    def evaluate(
        self,
        query: Pattern | str,
        mode: Mode | str = Mode.MEMORY,
        emit_matches: bool = True,
    ) -> QueryOutcome:
        """Plan (cached), warm up, and evaluate one query cold."""
        return self._evaluate_one(query, Mode.parse(mode), emit_matches)

    def evaluate_batch(
        self,
        queries: Sequence[Pattern | str],
        mode: Mode | str = Mode.MEMORY,
        emit_matches: bool = True,
    ) -> BatchResult:
        """Evaluate ``queries`` sequentially; merge counters in order."""
        mode = Mode.parse(mode)
        begin = time.perf_counter()
        outcomes = [
            self._evaluate_one(query, mode, emit_matches)
            for query in queries
        ]
        return self._assemble(outcomes, time.perf_counter() - begin)

    def evaluate_parallel(
        self,
        queries: Sequence[Pattern | str],
        workers: int = 2,
        mode: Mode | str = Mode.MEMORY,
        emit_matches: bool = True,
    ) -> BatchResult:
        """Fan ``queries`` out over ``workers`` processes.

        Results and merged counters are byte-identical to
        :meth:`evaluate_batch` on the same queries; only wall-clock
        differs.  ``workers <= 1`` degenerates to the sequential path.
        """
        mode = Mode.parse(mode)
        begin = time.perf_counter()
        outcomes: list[QueryOutcome | None] = [None] * len(queries)
        jobs: list[EvalJob] = []
        plans: dict[int, Plan] = {}
        for i, query in enumerate(queries):
            plan = self.planner.plan(query)
            canonical = plan.query.to_xpath()
            if self.planner.refutes(plan.query):
                outcomes[i] = self._refuted_outcome(plan, canonical)
                continue
            cached = self._result_cache.get(
                (canonical, mode.value, emit_matches)
            )
            if cached is not None:
                outcomes[i] = replace(cached, cached=True)
                continue
            self._materialize_plan(plan)
            plans[i] = plan
            jobs.append(
                EvalJob.from_patterns(
                    i, plan.query, plan.all_views, plan.algorithm,
                    plan.scheme, mode=mode, emit_matches=emit_matches,
                )
            )
        for result in self.run_jobs(jobs, workers=workers, warm=True):
            plan = plans[result.index]
            outcome = self._outcome_from(result, plan)
            self._result_cache.put(
                (outcome.query, mode.value, emit_matches), outcome
            )
            outcomes[result.index] = outcome
        assert all(outcome is not None for outcome in outcomes)
        return self._assemble(outcomes, time.perf_counter() - begin)

    def evaluate_jobs(
        self, jobs: Sequence[EvalJob], workers: int = 0
    ) -> list[JobResult]:
        """Explicit-plan entry point (the bench harness grid): warm up
        every (view, scheme) once, then run the jobs, parallel when
        ``workers > 1``.  Results come back in job-index order."""
        jobs = list(jobs)
        self.warmup_jobs(jobs)
        return self.run_jobs(jobs, workers=workers, warm=True)

    def run_jobs(
        self, jobs: Sequence[EvalJob], workers: int = 0, warm: bool = True
    ) -> list[JobResult]:
        """Run already-warm jobs, in-process or across worker processes."""
        jobs = list(jobs)
        if not jobs:
            return []
        if workers <= 1:
            return [
                run_job(self.catalog, job, expect_warm=warm) for job in jobs
            ]
        store = self._ensure_snapshot()
        stripes = [jobs[k::workers] for k in range(workers)]
        pool = self._get_executor(workers)
        futures = [
            pool.submit(
                run_worker_jobs, store, stripe, self.pool_capacity,
                self.catalog.version,
            )
            for stripe in stripes
            if stripe
        ]
        results: list[JobResult] = []
        for future in futures:
            results.extend(future.result())
        results.sort(key=lambda result: result.index)
        return results

    def _get_executor(self, workers: int) -> ProcessPoolExecutor:
        """A worker pool kept alive across batches.

        Reusing processes lets the worker-side attachment memo
        (:mod:`repro.service.worker`) skip re-parsing the store between
        batches; the pool is rebuilt only when the worker count changes.
        """
        if self._executor is not None and self._executor_workers != workers:
            self._executor.shutdown()
            self._executor = None
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=workers)
            self._executor_workers = workers
        return self._executor

    # -- internals ------------------------------------------------------------

    def _evaluate_one(
        self, query: Pattern | str, mode: Mode, emit_matches: bool
    ) -> QueryOutcome:
        plan = self.planner.plan(query)
        canonical = plan.query.to_xpath()
        if self.planner.refutes(plan.query):
            return self._refuted_outcome(plan, canonical)
        key = (canonical, mode.value, emit_matches)
        cached = self._result_cache.get(key)
        if cached is not None:
            return replace(cached, cached=True)
        self._materialize_plan(plan)
        job = EvalJob.from_patterns(
            0, plan.query, plan.all_views, plan.algorithm, plan.scheme,
            mode=mode, emit_matches=emit_matches,
        )
        outcome = self._outcome_from(
            run_job(self.catalog, job, expect_warm=True), plan
        )
        self._result_cache.put(key, outcome)
        return outcome

    @staticmethod
    def _outcome_from(result: JobResult, plan: Plan) -> QueryOutcome:
        return QueryOutcome(
            query=plan.query.to_xpath(),
            combo=result.combo,
            match_keys=result.match_keys,
            match_count=result.match_count,
            counters=result.counters,
            io=result.io,
            elapsed_s=result.elapsed_s,
            plan_views=[view.to_xpath() for view in plan.all_views],
        )

    @staticmethod
    def _refuted_outcome(plan: Plan, canonical: str) -> QueryOutcome:
        return QueryOutcome(
            query=canonical,
            combo=combo_label(plan.algorithm, plan.scheme),
            match_keys=[],
            match_count=0,
            counters=Counters(),
            io=IOStats(),
            elapsed_s=0.0,
            refuted=True,
        )

    @staticmethod
    def _assemble(
        outcomes: Sequence[QueryOutcome], elapsed: float
    ) -> BatchResult:
        counters = Counters()
        io = IOStats()
        for outcome in outcomes:
            counters.merge(outcome.counters)
            io.merge(outcome.io)
        return BatchResult(
            outcomes=list(outcomes),
            counters=counters,
            io=io,
            elapsed_s=elapsed,
        )

    def snapshot(self) -> str:
        """Ensure (and return) an on-disk store reflecting the current
        view set.  Parallel dispatch calls this lazily; exposing it lets
        callers pay the save cost up front, outside any timed region."""
        return self._ensure_snapshot()

    def _ensure_snapshot(self) -> str:
        """Path of a store that reflects the catalog's current view set.

        A service attached to an up-to-date on-disk store hands workers
        that store directly; otherwise the catalog is saved to a private
        temp directory, re-saved only when the view set has grown since.
        """
        version = self.catalog.version
        if self._store_path is not None and version == self._store_version:
            return self._store_path
        if self._snapshot_dir is None:
            self._snapshot_dir = tempfile.mkdtemp(prefix="repro-service-")
        if self._snapshot_version != version:
            save_catalog(self.catalog, self._snapshot_dir)
            self._snapshot_version = version
        return self._snapshot_dir

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None
        if self._snapshot_dir is not None:
            shutil.rmtree(self._snapshot_dir, ignore_errors=True)
            self._snapshot_dir = None
            self._snapshot_version = None
        if self._owns_catalog:
            self.catalog.close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
