"""The multi-process query service.

:class:`QueryService` is the layer the ROADMAP's "heavy traffic" goal
asks for on top of the single-query engine: it owns one materialized
:class:`~repro.storage.catalog.ViewCatalog` (built in memory, or attached
from a :func:`~repro.storage.persistence.save_catalog` store), answers
queries through a plan-cached :class:`~repro.planner.Planner`, and fans
independent queries out across a :class:`~concurrent.futures.ProcessPoolExecutor`
whose workers reattach the persisted store and run the existing engine.

Determinism contract
--------------------
Every job runs **cold** (buffer pool dropped per repeat, stats reset per
run) and the per-job counters are folded in job-index order, so
``evaluate_parallel`` returns match keys and aggregated work/I-O counters
byte-identical to ``evaluate_batch`` over the same queries — whatever the
worker count or scheduling order.  Wall-clock fields are the only
non-deterministic outputs.

Cache layers
------------
* the planner's **plan cache** (parse → cover → :class:`Plan`, memoized
  per catalog generation; invalidated by ``register`` /
  ``adopt_catalog_views``);
* an optional keyed **result cache** in the service itself
  (``result_cache_size > 0``), keyed by store generation (DESIGN.md
  §16): a maintenance commit rolls the keys instead of purging, so
  readers pinned to an older generation keep their hits; view-set
  changes within a generation still invalidate explicitly;
* the shared executor's **stream cache** (:mod:`repro.service.streams`),
  memoizing eval-node match streams across batches, keyed by
  ``(catalog epoch, node hash)`` — per generation, like the result
  cache — and cleared with it on view-set changes.

Shared-scan batches
-------------------
``evaluate_batch`` / ``evaluate_parallel`` default to the shared-scan
executor (:mod:`repro.service.shared`): queries are hash-consed into
distinct eval nodes, each node runs once, and its stream plus recorded
counters replay to every consumer — byte-identical outcomes to the
independent per-query path (the determinism contract makes a
duplicate's would-be accounting equal to the original's), at a fraction
of the executed work.  ``REPRO_SHARED=0`` or ``shared=False`` forces
the independent path.

Snapshot reads (MVCC)
---------------------
A maintenance commit publishes a new store *generation* instead of
invalidating readers (DESIGN.md §16).  Suspended continuations are
stamped with the generation they started against and resume
byte-identically from a pinned pre-commit snapshot; callers can hold a
generation explicitly with :meth:`QueryService.pin_generation` and
evaluate ``as_of`` it while updates land concurrently.
:meth:`QueryService.gc_generations` reaps unpinned generation archives
under a disk budget — pinned generations are never reaped, and sessions
whose generation was reaped expire typed on resume.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import wait as wait_futures
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from typing import Sequence

from repro.algorithms.base import Counters, Mode
from repro.algorithms.engine import (
    Algorithm,
    combo_label,
    evaluate_quantum as engine_evaluate_quantum,
)
from repro.algorithms.preempt import PlanState, QuantumBudget
from repro.caching import CacheStats, LRUCache
from repro.errors import (
    ContinuationExpired,
    ContinuationMalformed,
    QueryTimeout,
    ReproError,
    ServiceError,
    StorageError,
    StoreCorrupt,
    WorkerLost,
)
from repro.planner import Plan, Planner
from repro.resilience import faults
from repro.selection.online import (
    ADVISOR_PREFIX,
    AdoptedView,
    AdoptionPlan,
    CalibratedStatistics,
    Measurement,
    WorkloadLog,
    advisor_enabled,
    advisor_view_name,
    plan_adoption,
    rebalance_to_budget,
)
from repro.selection.estimates import DocumentStatistics
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.policy import Deadline, RetryPolicy, wait
from repro.service.jobs import (
    EvalJob,
    JobFailure,
    JobResult,
    merge_results,
    run_job,
)
from repro.service.continuation import decode_token, encode_token
from repro.service.shared import (
    SharedNode,
    SharedStats,
    node_digest,
    node_key,
    shared_enabled,
)
from repro.service.streams import StreamCache
from repro.service.worker import run_worker_jobs
from repro.storage.catalog import Scheme, ViewCatalog
from repro.storage.generations import GCReport, reap_generations
from repro.storage.pager import IOStats
from repro.storage.persistence import (
    load_catalog,
    read_store_version,
    save_catalog,
)
from repro.tpq.parser import parse_pattern
from repro.tpq.pattern import Pattern


@dataclass
class QueryOutcome:
    """One answered query: canonical text, match keys and accounting."""

    query: str
    combo: str
    match_keys: list[tuple[int, ...]]
    match_count: int
    counters: Counters
    io: IOStats
    elapsed_s: float
    cached: bool = False
    refuted: bool = False
    plan_views: list[str] = field(default_factory=list)
    #: True when the planned views failed and the answer was recomputed
    #: from base views over the base document (still correct — views are
    #: an optimization, never the source of truth).
    degraded: bool = False
    #: Non-empty when the query could not be answered at all:
    #: ``"<kind>: <detail>"`` with the breaker's failure taxonomy.
    error: str = ""
    #: True when this outcome was replayed from a shared eval node's
    #: stream (batch CSE or stream cache) instead of its own engine run.
    #: Counters/I-O are still the run's recorded (deterministic) values.
    shared: bool = False

    @property
    def measured(self) -> Measurement:
        """The single authoritative measured-counter contract.

        External consumers (the workload recorder, benchmarks, user
        telemetry) read this instead of re-deriving totals from the raw
        ``counters``/``io`` objects.  For cached and shared replays the
        values are the run's *recorded* deterministic accounting — equal
        to what an independent execution would have measured, i.e. the
        query's logical demand.
        """
        return Measurement(
            work=self.counters.work,
            elements_scanned=self.counters.elements_scanned,
            comparisons=self.counters.comparisons,
            logical_reads=self.io.logical_reads,
            physical_reads=self.io.physical_reads,
            matches=self.match_count,
            elapsed_s=self.elapsed_s,
        )


@dataclass
class BatchResult:
    """Outcomes of one batch plus the deterministic counter merge."""

    outcomes: list[QueryOutcome]
    counters: Counters
    io: IOStats
    elapsed_s: float

    @property
    def match_counts(self) -> list[int]:
        return [outcome.match_count for outcome in self.outcomes]


@dataclass
class QuantumOutcome:
    """One quantum of a preemptible evaluation.

    ``page`` holds only this quantum's match keys; concatenating the
    pages of one continuation chain yields exactly the uninterrupted
    run's matches, in the same order, each exactly once.  ``counters``
    and ``match_count`` are cumulative over the chain (the final
    quantum's equal a one-shot run's); ``io`` accumulates the logical/
    physical read and page-write counts across quanta, while its
    wall-clock second fields cover this quantum only.

    ``done=False`` comes with an opaque continuation ``token`` for
    :meth:`QueryService.resume_quantum`; ``done=True`` never does.
    """

    query: str
    combo: str
    page: list[tuple[int, ...]]
    match_count: int
    counters: Counters
    io: IOStats
    elapsed_s: float
    done: bool
    token: str | None = None
    quanta: int = 1
    #: True when this quantum hit its budget and suspended.
    preempted: bool = False
    #: False when the plan's engine cannot suspend (non-ViewJoin plans
    #: answer in a single unbounded quantum).
    preemptible: bool = True
    degraded: bool = False
    refuted: bool = False
    error: str = ""
    plan_views: list[str] = field(default_factory=list)


@dataclass
class _GenerationPin:
    """One pinned pre-commit generation: a frozen catalog/planner pair.

    Taken by :meth:`QueryService.apply_updates` immediately before a
    commit whenever something still references the outgoing generation
    (a suspended continuation session or an explicit user pin).  The
    catalog is a :meth:`~repro.storage.catalog.ViewCatalog.pin_snapshot`
    alias (shared pager, copy-on-write pages), the planner a
    :meth:`~repro.planner.Planner.clone_for_snapshot` frozen at the
    pre-commit epoch pair, so cache keys derived from the pair keep
    hitting their pre-commit entries.  The pin dies when nothing
    references its generation any more, or when GC reaps the
    generation's archive out from under it.
    """

    generation: int
    catalog: ViewCatalog
    planner: Planner


class QueryService:
    """Plan-cached, optionally parallel query answering over one catalog.

    Args:
        catalog: an existing in-memory catalog to serve from (mutually
            exclusive with ``store_path``).
        store_path: a ``save_catalog`` store directory to attach
            read-mostly; the service owns (and closes) the loaded catalog.
        scheme / algorithm: defaults handed to the planner.
        plan_cache_size: LRU size of the planner's plan cache.
        result_cache_size: LRU size of the keyed result cache; 0 disables.
        stream_cache_size: LRU size (in eval nodes) of the shared
            executor's sub-plan stream cache; 0 disables cross-batch
            stream replay (within-batch CSE still applies).
        prune_with_dataguide: refute impossible queries before running.
        advisor: turn the online adaptive view advisor on — record the
            query stream into a :class:`WorkloadLog` and (when
            ``advisor_interval > 0``) periodically run
            :meth:`advisor_cycle` to auto-materialize/drop views under
            ``advisor_budget_bytes``.  ``REPRO_ADVISOR=0`` overrides the
            flag, disabling recording and the loop entirely — no
            per-query overhead beyond one attribute check.
        advisor_budget_bytes: storage budget for advisor-owned views.
        advisor_interval: recorded outcomes between automatic advisor
            cycles; 0 leaves cycles to explicit :meth:`advisor_cycle`
            calls.
        advisor_max_view_size: largest candidate view in pattern nodes.
        advisor_decay: demand-weight decay applied after each cycle
            (how fast stale traffic loses its claim on the budget).
        generation_budget_bytes: disk high-water mark for archived
            store generations (DESIGN.md §16) — after every durable
            commit the service auto-reaps unpinned generation archives
            down to this budget.  ``None`` (the default) leaves GC to
            explicit :meth:`gc_generations` calls.
    """

    def __init__(
        self,
        catalog: ViewCatalog | None = None,
        *,
        store_path: str | None = None,
        scheme: Scheme | str = Scheme.LINKED_PARTIAL,
        algorithm: Algorithm | str = Algorithm.VIEWJOIN,
        plan_cache_size: int = 128,
        result_cache_size: int = 0,
        stream_cache_size: int = 32,
        prune_with_dataguide: bool = True,
        retry_policy: RetryPolicy | None = None,
        failure_threshold: int = 3,
        verify: bool = False,
        advisor: bool = False,
        advisor_budget_bytes: float = float(1 << 20),
        advisor_interval: int = 0,
        advisor_max_view_size: int = 4,
        advisor_decay: float = 0.5,
        generation_budget_bytes: int | None = None,
    ):
        if (catalog is None) == (store_path is None):
            raise ServiceError(
                "pass exactly one of `catalog` or `store_path`"
            )
        self._owns_catalog = store_path is not None
        self._store_path = str(store_path) if store_path else None
        if catalog is None:
            # Finish any update-log tail an interrupted maintenance
            # commit left behind before attaching.
            from repro.maintenance.engine import recover_store

            recover_store(store_path)
            catalog = load_catalog(store_path, verify=verify)
        self.catalog = catalog
        #: Workers must replay the parent's pool residency behaviour.
        self.pool_capacity = catalog.pager.pool.capacity
        self.planner = Planner(
            catalog,
            scheme=scheme,
            algorithm=algorithm,
            prune_with_dataguide=prune_with_dataguide,
            plan_cache_size=plan_cache_size,
        )
        if self._store_path is not None:
            self.planner.adopt_catalog_views()
        self._store_version = catalog.version
        self._snapshot_dir: str | None = None
        self._snapshot_version: int | None = None
        #: Disk generation of the private temp snapshot (its numbering
        #: is the *store's*, independent of the in-memory catalog's).
        self._snapshot_generation: int | None = None
        self._result_cache = LRUCache(result_cache_size)
        self._stream_cache = StreamCache(stream_cache_size)
        # MVCC state (DESIGN.md §16): pinned pre-commit snapshots by
        # generation, explicit user-pin refcounts, and GC accounting.
        self._generation_snapshots: dict[int, _GenerationPin] = {}
        self._user_pins: dict[int, int] = {}
        self._generation_budget = generation_budget_bytes
        self._generations_reaped = 0
        self._generation_cache_evictions = 0
        self._shared_stats = SharedStats()
        self._executor: ProcessPoolExecutor | None = None
        self._executor_workers = 0
        self._closed = False
        self.retry_policy = (
            retry_policy if retry_policy is not None else RetryPolicy()
        )
        self.breaker = CircuitBreaker(failure_threshold=failure_threshold)
        self._degraded_queries = 0
        self._failed_queries = 0
        # Live continuations of suspended (preemptible) queries.  The
        # session id is a monotone counter — no randomness (RL103) and
        # unguessable ids are not a goal: the token, not the sid, is the
        # capability, and sids die with the state they index.
        self._continuations: dict[str, dict[str, int]] = {}
        self._continuation_seq = 0
        self._continuations_issued = 0
        self._continuations_completed = 0
        self._continuations_expired = 0
        self._continuations_purged = 0
        self._quanta_served = 0
        self._job_retries = 0
        self._pool_respawns = 0
        self._deadline_expiries = 0
        # One None-check per answered query is the advisor's entire
        # disabled-path overhead (`advisor=False` or REPRO_ADVISOR=0).
        self._advisor_log: WorkloadLog | None = (
            WorkloadLog() if advisor and advisor_enabled() else None
        )
        self._advisor_budget = float(advisor_budget_bytes)
        self._advisor_interval = int(advisor_interval)
        self._advisor_max_view_size = int(advisor_max_view_size)
        self._advisor_decay = float(advisor_decay)
        self._advisor_adopted: dict[str, AdoptedView] = {}
        self._advisor_events: list[dict[str, object]] = []
        self._advisor_cycles = 0
        self._advisor_since_cycle = 0
        self._advisor_stats: DocumentStatistics | None = None
        self._advisor_stats_epoch: int | None = None

    @classmethod
    def open(cls, store_path, **kwargs) -> "QueryService":
        """Attach a service to a persisted view store."""
        return cls(store_path=str(store_path), **kwargs)

    # -- registration & invalidation ------------------------------------------

    def register(self, pattern: Pattern | str, name: str | None = None) -> Pattern:
        """Register (and materialize) a view; drops both cache layers."""
        pattern = self.planner.register(pattern, name=name)
        self.invalidate_results()
        return pattern

    def adopt_catalog_views(self) -> int:
        adopted = self.planner.adopt_catalog_views()
        if adopted:
            self.invalidate_results()
        return adopted

    def invalidate_results(self) -> int:
        """Drop the result cache *and* the shared stream cache (the
        catalog changed); returns how many result entries were evicted.

        The stream cache is also epoch-keyed, so this clear is belt and
        braces: even a missed call could not serve a stale stream, but
        eager eviction reclaims the spill pages immediately."""
        self._stream_cache.clear()
        return self._result_cache.invalidate()

    # -- maintenance ----------------------------------------------------------

    def apply_updates(self, deltas, force_rebuild: bool = False):
        """Commit document updates and repair every view (incremental
        view maintenance).

        Runs :func:`repro.maintenance.engine.apply_updates` against the
        served catalog, then restores the service's end-to-end
        consistency contract:

        * store-backed services log the deltas to the store's update log
          first and commit the repaired pages/manifest in place —
          publishing a new *generation* (the outgoing manifest and
          document are archived first, so pinned readers stay
          answerable) — and pooled workers detect the rewrite and
          reattach;
        * the planner re-syncs (stale DataGuide and plans dropped,
          dropped views deregistered).  The result and stream caches
          are **not** purged: their keys carry the generation, so the
          commit rolls them — pinned readers keep their pre-commit
          hits, post-commit reads key fresh entries.

        If anything still references the outgoing generation (a
        suspended continuation session or a user pin), a frozen
        catalog/planner snapshot is taken *before* the commit and kept
        in ``_generation_snapshots`` so those readers finish
        byte-identically against the state they started from.

        Returns the :class:`repro.maintenance.engine.MaintenanceReport`.
        """
        from repro.maintenance.engine import apply_updates as maintain
        from repro.maintenance.wal import WAL_FILENAME, UpdateLog
        from repro.storage.persistence import commit_store
        import pathlib

        outgoing = self.catalog.generation
        pin: _GenerationPin | None = None
        if (
            outgoing not in self._generation_snapshots
            and self._generation_referenced(outgoing)
        ):
            snap_catalog = self.catalog.pin_snapshot()
            pin = _GenerationPin(
                generation=outgoing,
                catalog=snap_catalog,
                planner=self.planner.clone_for_snapshot(snap_catalog),
            )
        wal = None
        if self._store_path is not None:
            wal = UpdateLog(pathlib.Path(self._store_path) / WAL_FILENAME)
        report = maintain(
            self.catalog, deltas, wal=wal, force_rebuild=force_rebuild
        )
        if report.deltas:
            # Only install the pin for a non-empty commit: an empty one
            # changed nothing, so the "snapshot" would just alias the
            # live state under the same generation number.
            if pin is not None:
                self._generation_snapshots[outgoing] = pin
            if self._store_path is not None:
                commit_store(
                    self.catalog, self._store_path, wal_lsn=wal.tip()
                )
                self._store_version = self.catalog.version
            self.planner.sync_catalog()
            self._auto_gc()
        return report

    # -- MVCC generations (DESIGN.md §16) -------------------------------------

    @property
    def generation(self) -> int:
        """The live catalog's current store generation."""
        return self.catalog.generation

    def pin_generation(self) -> int:
        """Pin the current generation for snapshot reads; returns it.

        While pinned, :meth:`evaluate` / :meth:`evaluate_batch` /
        :meth:`evaluate_quantum` accept ``as_of=<generation>`` and
        answer byte-identically to the pre-commit state no matter how
        many commits land in between, and :meth:`gc_generations` never
        reaps the generation's archive.  Pins are refcounted; release
        with :meth:`unpin_generation`.
        """
        generation = self.catalog.generation
        self._user_pins[generation] = self._user_pins.get(generation, 0) + 1
        return generation

    def unpin_generation(self, generation: int) -> None:
        """Release one :meth:`pin_generation` hold; drops the frozen
        snapshot once nothing references the generation any more."""
        count = self._user_pins.get(generation, 0)
        if count <= 1:
            self._user_pins.pop(generation, None)
        else:
            self._user_pins[generation] = count - 1
        self._release_generation(generation)

    def gc_generations(
        self, budget_bytes: int | None = None
    ) -> GCReport:
        """Reap archived store generations down to a disk budget.

        Hard-pinned generations — the current one and every
        :meth:`pin_generation` hold — are never reaped.  Generations
        referenced only by suspended continuation sessions are
        *soft*-pinned: reaped last, and when one does die its sessions
        expire typed (:class:`ContinuationExpired`) on their next
        resume instead of answering from vanished state.  Cache entries
        of reaped generations are evicted (counted in
        ``resilience_metrics()['generation_cache_evictions']``).

        ``budget_bytes`` defaults to the service's
        ``generation_budget_bytes``; with neither set the pass reaps
        nothing and just reports the archive's state.  In-memory
        services have no archive — their snapshots are dropped eagerly
        when dereferenced, and GC is a no-op report.
        """
        budget = (
            budget_bytes if budget_bytes is not None
            else self._generation_budget
        )
        current = self.catalog.generation
        hard = {current} | {
            gen for gen, count in self._user_pins.items() if count > 0
        }
        soft = {
            record["generation"]
            for record in self._continuations.values()
            if "generation" in record
        }
        soft |= set(self._generation_snapshots)
        soft -= hard
        if self._store_path is None:
            return GCReport(
                reaped=(), kept=(), pinned=tuple(sorted(hard)),
                bytes_before=0, bytes_after=0,
                budget_bytes=int(budget) if budget is not None else 0,
            )
        report = reap_generations(
            self._store_path,
            budget if budget is not None else 1 << 62,
            pinned=hard,
            soft_pinned=soft,
        )
        reaped = set(report.reaped)
        if reaped:
            self._generations_reaped += len(reaped)
            evicted = self._result_cache.invalidate(
                lambda key: key[0] in reaped
            )
            pairs = set()
            for gen in report.reaped:
                dead = self._generation_snapshots.pop(gen, None)
                if dead is not None:
                    pairs.add((
                        dead.catalog.maintenance_epoch,
                        dead.planner.generation,
                    ))
                    dead.catalog.close()
            if pairs:
                evicted += self._stream_cache.evict(
                    lambda key: key[0] in pairs
                )
            self._generation_cache_evictions += evicted
            stale = [
                sid for sid, record in self._continuations.items()
                if record.get("generation") in reaped
            ]
            # Purged server-side (the resume that observes the loss is
            # what counts as the *expiry*, typed, at the sid miss).
            for sid in stale:
                del self._continuations[sid]
            self._continuations_purged += len(stale)
        return report

    def _auto_gc(self) -> None:
        """Post-commit GC under the configured high-water mark."""
        if self._store_path is not None and self._generation_budget is not None:
            self.gc_generations()

    def _generation_referenced(self, generation: int) -> bool:
        """Does anything (session or user pin) still rest on it?"""
        if self._user_pins.get(generation):
            return True
        return any(
            record.get("generation") == generation
            for record in self._continuations.values()
        )

    def _release_generation(self, generation: int) -> None:
        """Drop the frozen snapshot once its generation is unreferenced
        (the live generation never has one to drop)."""
        if generation == self.catalog.generation:
            return
        if self._generation_referenced(generation):
            return
        pin = self._generation_snapshots.pop(generation, None)
        if pin is not None:
            # The snapshot borrowed the live pager; close() releases
            # only the snapshot's own references.
            pin.catalog.close()

    def _resolve_read(
        self, as_of: int | None
    ) -> tuple[ViewCatalog, Planner]:
        """The catalog/planner pair a read pinned ``as_of`` runs over:
        the live pair for the current generation (or ``None``), a
        frozen snapshot for a pinned older one, a typed error for a
        generation this service does not hold."""
        if as_of is None or as_of == self.catalog.generation:
            return self.catalog, self.planner
        pin = self._generation_snapshots.get(as_of)
        if pin is None:
            raise ServiceError(
                f"generation {as_of} is not pinned on this service"
                f" (current generation is {self.catalog.generation};"
                " call pin_generation() before committing updates, or"
                " the generation has been garbage-collected)"
            )
        return pin.catalog, pin.planner

    @property
    def plan_cache_stats(self) -> CacheStats:
        return self.planner.plan_cache_stats

    @property
    def result_cache_stats(self) -> CacheStats:
        return self._result_cache.stats

    @property
    def stream_cache_stats(self) -> CacheStats:
        return self._stream_cache.stats

    def shared_metrics(self) -> dict[str, object]:
        """Work actually executed vs replayed by the shared batch path."""
        metrics = self._shared_stats.as_dict()
        spill_io = self._stream_cache.io
        metrics["stream_cache"] = self._stream_cache.stats.as_dict()
        metrics["stream_spill_logical_reads"] = spill_io.logical_reads
        metrics["stream_spill_physical_reads"] = spill_io.physical_reads
        metrics["stream_spill_pages_written"] = spill_io.pages_written
        metrics["stream_spilled_streams"] = self._stream_cache.spilled_streams
        metrics["stream_spilled_bytes"] = self._stream_cache.spilled_bytes
        return metrics

    # -- online advisor -------------------------------------------------------

    @property
    def advisor_log(self) -> WorkloadLog | None:
        """The live workload log, ``None`` when the advisor is off."""
        return self._advisor_log

    def _advisor_observe(self, outcomes: Sequence[QueryOutcome]) -> None:
        """Fold answered queries into the workload log; run a cycle when
        the configured cadence is due.  No-op (one attribute check) when
        the advisor is disabled."""
        log = self._advisor_log
        if log is None:
            return
        for outcome in outcomes:
            log.record(outcome)
        self._advisor_since_cycle += len(outcomes)
        if (
            self._advisor_interval > 0
            and self._advisor_since_cycle >= self._advisor_interval
        ):
            self.advisor_cycle()

    def _advisor_statistics(self) -> DocumentStatistics:
        """Document statistics cached per maintenance epoch (the document
        only changes at maintenance commits)."""
        epoch = self.catalog.maintenance_epoch
        if self._advisor_stats is None or self._advisor_stats_epoch != epoch:
            self._advisor_stats = DocumentStatistics.collect(
                self.catalog.document
            )
            self._advisor_stats_epoch = epoch
        return self._advisor_stats

    def advisor_cycle(self) -> AdoptionPlan:
        """Run one adoption cycle: calibrate, plan, adopt/drop, decay.

        Harvests measured list cardinalities from every materialized
        catalog view into the log (calibrating the cost model), asks the
        controller for a budgeted adopt/keep/drop plan over the logged
        demand, then applies it through the ordinary registration path —
        adopted views materialize immediately (PR 4 maintenance keeps
        them fresh; the circuit breaker can quarantine them like any
        other view) and drops invalidate everything a ``register`` /
        ``apply_updates`` would: planner generation (plan cache), result
        and stream caches, and — via the catalog version bump — the
        worker snapshot and pooled-worker attachments.

        Deterministic: decisions are a pure function of the recorded log
        and the catalog's measured sizes (no wall clock, no randomness).
        Raises :class:`ServiceError` when the advisor is disabled.
        """
        log = self._advisor_log
        if log is None:
            raise ServiceError(
                "advisor is disabled on this service"
                " (advisor=False or REPRO_ADVISOR=0)"
            )
        self._advisor_since_cycle = 0
        self._advisor_cycles += 1
        cycle = self._advisor_cycles
        stats = self._advisor_statistics()
        log.harvest_catalog(self.catalog)
        calibration = CalibratedStatistics.from_log(stats, log)
        user_views = {
            view.to_xpath()
            for view in self.planner.registered
            if not (view.name or "").startswith(ADVISOR_PREFIX)
        }
        plan = plan_adoption(
            log,
            calibration,
            budget_bytes=self._advisor_budget,
            adopted={
                xpath: view.bytes
                for xpath, view in self._advisor_adopted.items()
            },
            existing=user_views,
            max_view_size=self._advisor_max_view_size,
        )
        for decision in plan.decisions:
            if decision.action == "drop":
                self._advisor_events.append(
                    {"cycle": cycle, **decision.as_dict()}
                )
        self._drop_advisor_views(plan.drop)
        for pattern in plan.adopt:
            xpath = pattern.to_xpath()
            name = advisor_view_name(xpath)
            # Register by canonical text: the planner names parsed
            # patterns, and the ``adv:`` name is what marks the view as
            # advisor-owned (droppable) in catalog and planner alike.
            self.register(xpath, name=name)
            measured_bytes = float(sum(
                info.size_bytes
                for (view_name, __), info in self.catalog.entries()
                if view_name == name
            ))
            benefit = next(
                (
                    decision.benefit
                    for decision in plan.decisions
                    if decision.action == "adopt"
                    and decision.xpath == xpath
                ),
                0.0,
            )
            self._advisor_adopted[xpath] = AdoptedView(
                name=name, xpath=xpath, bytes=measured_bytes,
                benefit=benefit, cycle=cycle,
            )
            self._advisor_events.append({
                "cycle": cycle, "action": "adopt", "view": xpath,
                "bytes": round(measured_bytes, 1),
                "benefit": round(benefit, 1),
                "reason": "best remaining benefit density within budget",
            })
        # The knapsack packed by *estimated* bytes for new candidates;
        # materialization just measured the truth.  Evict (lowest
        # benefit density first) until the measured total fits again.
        for xpath in rebalance_to_budget(
            self._advisor_adopted, self._advisor_budget
        ):
            self._advisor_events.append({
                "cycle": cycle, "action": "drop", "view": xpath,
                "bytes": round(self._advisor_adopted[xpath].bytes, 1),
                "benefit": round(self._advisor_adopted[xpath].benefit, 1),
                "reason": "measured bytes exceeded the budget after"
                          " materialization",
            })
            self._drop_advisor_views([xpath])
        log.decay(self._advisor_decay)
        return plan

    def _drop_advisor_views(self, xpaths: Sequence[str]) -> None:
        """Drop advisor-owned views with full invalidation.

        Mirrors :meth:`_quarantine`: the planner stops planning over the
        view (generation bump → plan cache), the catalog drops its rows
        (version bump → next snapshot re-saves and pooled workers
        reattach), and the result/stream caches are emptied.
        """
        dropped = False
        for xpath in xpaths:
            adopted = self._advisor_adopted.pop(xpath, None)
            if adopted is None:
                continue
            self.planner.deregister(adopted.name)
            self.catalog.remove_view(adopted.name)
            dropped = True
        if dropped:
            self.invalidate_results()
            # Sessions survive: resume's per-view check expires (typed)
            # exactly the ones that planned over a dropped view.

    def advisor_metrics(self) -> dict[str, object]:
        """Recorder/controller telemetry for operators and benches."""
        log = self._advisor_log
        return {
            "enabled": log is not None,
            "recorded": log.recorded if log is not None else 0,
            "patterns": len(log) if log is not None else 0,
            "cycles": self._advisor_cycles,
            "budget_bytes": self._advisor_budget,
            "adopted_bytes": sum(
                view.bytes for view in self._advisor_adopted.values()
            ),
            "adopted_views": [
                view.as_dict() for view in self._advisor_adopted.values()
            ],
            "events": list(self._advisor_events),
        }

    # -- warm-up --------------------------------------------------------------

    def warmup(self, queries: Sequence[Pattern | str]) -> int:
        """Materialize every view the given queries will need, exactly
        once per (view, scheme); returns how many materializations ran.

        After warm-up, evaluating those queries performs no
        materialization inside the timed region (enforced by
        :func:`~repro.service.jobs.run_job`).
        """
        before = self.catalog.materializations
        for query in queries:
            self._materialize_plan(self.planner.plan(query))
        return self.catalog.materializations - before

    def warmup_jobs(self, jobs: Sequence[EvalJob]) -> int:
        """Materialize each distinct (view, scheme) of explicit jobs once."""
        before = self.catalog.materializations
        # Insertion-ordered dict, not a set: materialization must follow
        # job order because page layout (and thus physical-read counts)
        # depends on the order views hit the store.
        seen: dict[tuple[str, str], None] = {}
        for job in jobs:
            for xpath, name in job.views:
                key = (name or xpath, job.scheme)
                if key in seen:
                    continue
                seen[key] = None
                self.catalog.add(
                    parse_pattern(xpath, name=name), job.scheme
                )
        return self.catalog.materializations - before

    def _materialize_plan(
        self, plan: Plan, catalog: ViewCatalog | None = None
    ) -> None:
        if catalog is None:
            catalog = self.catalog
        for view in plan.all_views:
            catalog.add(view, plan.scheme)

    # -- evaluation -----------------------------------------------------------

    def evaluate(
        self,
        query: Pattern | str,
        mode: Mode | str = Mode.MEMORY,
        emit_matches: bool = True,
        as_of: int | None = None,
    ) -> QueryOutcome:
        """Plan (cached), warm up, and evaluate one query cold.

        ``as_of`` pins the evaluation to a held store generation
        (DESIGN.md §16): the current one, or any generation kept alive
        by :meth:`pin_generation` / a suspended continuation — the
        answer is byte-identical to evaluating before the commits that
        superseded it.
        """
        outcome = self._evaluate_one(
            query, Mode.parse(mode), emit_matches, as_of=as_of
        )
        self._advisor_observe((outcome,))
        return outcome

    def evaluate_batch(
        self,
        queries: Sequence[Pattern | str],
        mode: Mode | str = Mode.MEMORY,
        emit_matches: bool = True,
        shared: bool | None = None,
        as_of: int | None = None,
    ) -> BatchResult:
        """Evaluate ``queries`` in-process; merge counters in input order.

        By default (``shared=None`` honours ``REPRO_SHARED``) the batch
        runs through the shared-scan executor: byte-identical queries
        are deduped before planning, identical eval nodes run once, and
        recorded streams/counters replay to every consumer — outcomes
        stay byte-identical to ``shared=False`` (one independent
        evaluation per input), which remains available as the
        differential escape hatch.
        """
        mode = Mode.parse(mode)
        if shared is None:
            shared = shared_enabled()
        begin = time.perf_counter()
        if shared:
            outcomes = self._evaluate_shared(
                queries, mode, emit_matches, workers=0,
                deadline=Deadline.after(None), degrade=False,
                resilient=False, as_of=as_of,
            )
        else:
            outcomes = [
                self._evaluate_one(query, mode, emit_matches, as_of=as_of)
                for query in queries
            ]
        return self._assemble(outcomes, time.perf_counter() - begin)

    def evaluate_parallel(
        self,
        queries: Sequence[Pattern | str],
        workers: int = 2,
        mode: Mode | str = Mode.MEMORY,
        emit_matches: bool = True,
        deadline_s: float | None = None,
        degrade: bool = True,
        shared: bool | None = None,
    ) -> BatchResult:
        """Fan ``queries`` out over ``workers`` processes.

        Results and merged counters are byte-identical to
        :meth:`evaluate_batch` on the same queries; only wall-clock
        differs.  ``workers <= 1`` degenerates to the sequential path.
        By default (``shared=None`` honours ``REPRO_SHARED``) the batch
        is first hash-consed into distinct eval nodes and only those
        become jobs (:mod:`repro.service.shared`); ``shared=False``
        dispatches one job per non-cached input.

        Resilience: ``deadline_s`` bounds the whole batch (expired jobs
        come back as ``error`` outcomes instead of hanging); lost
        workers are respawned and their jobs resubmitted under the
        service's :class:`RetryPolicy`; jobs that keep failing — or hit
        checksum corruption — trip the per-view circuit breaker, and
        with ``degrade=True`` their queries are transparently
        re-answered from base views over the base document
        (``degraded=True`` on the outcome, correctness preserved).
        """
        mode = Mode.parse(mode)
        if shared is None:
            shared = shared_enabled()
        begin = time.perf_counter()
        deadline = Deadline.after(deadline_s)
        if shared:
            outcomes = self._evaluate_shared(
                queries, mode, emit_matches, workers=workers,
                deadline=deadline, degrade=degrade, resilient=True,
            )
            return self._assemble(outcomes, time.perf_counter() - begin)
        generation = self.catalog.generation
        plans = self._plan_batch(queries)
        outcomes: list[QueryOutcome | None] = [None] * len(queries)
        jobs: list[EvalJob] = []
        plan_at: dict[int, Plan] = {}
        for i, plan in enumerate(plans):
            canonical = plan.query.to_xpath()
            if self.planner.refutes(plan.query):
                outcomes[i] = self._refuted_outcome(plan, canonical)
                continue
            cached = self._result_cache.get(
                (generation, canonical, mode.value, emit_matches)
            )
            if cached is not None:
                outcomes[i] = replace(cached, cached=True)
                continue
            plan_at[i] = plan
            jobs.append(
                EvalJob.from_patterns(
                    i, plan.query, plan.all_views, plan.algorithm,
                    plan.scheme, mode=mode, emit_matches=emit_matches,
                )
            )
        self._materialize_batch([plan_at[i] for i in sorted(plan_at)])
        try:
            results, failures = self._run_jobs_resilient(
                jobs, workers, warm=True, deadline=deadline
            )
        except StoreCorrupt as exc:
            # The snapshot save itself hit corruption: every dispatched
            # job fails typed and (optionally) degrades below.
            results = []
            failures = [
                JobFailure(
                    index=job.index, kind="store-corrupt",
                    message=str(exc), views=exc.views, pages=exc.pages,
                )
                for job in jobs
            ]
        for result in results:
            plan = plan_at[result.index]
            outcome = self._outcome_from(result, plan)
            for name in self._plan_view_names(plan):
                self.breaker.record_success(name)
            self._result_cache.put(
                (generation, outcome.query, mode.value, emit_matches),
                outcome,
            )
            outcomes[result.index] = outcome
        for failure in failures:
            plan = plan_at[failure.index]
            self._note_failure(plan, failure)
            if degrade and failure.kind != "timeout":
                outcomes[failure.index] = self._evaluate_degraded(
                    plan, mode, emit_matches
                )
            else:
                self._failed_queries += 1
                outcomes[failure.index] = self._error_outcome(plan, failure)
        assert all(outcome is not None for outcome in outcomes)
        return self._assemble(outcomes, time.perf_counter() - begin)

    def evaluate_jobs(
        self, jobs: Sequence[EvalJob], workers: int = 0
    ) -> list[JobResult]:
        """Explicit-plan entry point (the bench harness grid): warm up
        every (view, scheme) once, then run the jobs, parallel when
        ``workers > 1``.  Results come back in job-index order."""
        jobs = list(jobs)
        self.warmup_jobs(jobs)
        return self.run_jobs(jobs, workers=workers, warm=True)

    def run_jobs(
        self,
        jobs: Sequence[EvalJob],
        workers: int = 0,
        warm: bool = True,
        deadline_s: float | None = None,
    ) -> list[JobResult]:
        """Run already-warm jobs, in-process or across worker processes.

        Raises the first failure as its typed exception
        (:class:`QueryTimeout` / :class:`WorkerLost` /
        :class:`StoreCorrupt`) — the explicit-plan API has no degraded
        mode; use :meth:`evaluate_parallel` for that.
        """
        results, failures = self._run_jobs_resilient(
            list(jobs), workers, warm=warm,
            deadline=Deadline.after(deadline_s),
        )
        if failures:
            raise self._failure_error(failures[0])
        return results

    def _run_jobs_resilient(
        self,
        jobs: list[EvalJob],
        workers: int,
        warm: bool,
        deadline: Deadline,
    ) -> tuple[list[JobResult], list[JobFailure]]:
        """Run jobs with bounded retries; never hangs, never raises for a
        single job's failure.

        Returns ``(results, failures)``, both in job-index order, their
        indices disjoint and jointly covering the input.  Each job's
        result is recorded exactly once (first success wins), and jobs
        run cold, so counters merged from ``results`` are byte-identical
        to a failure-free sequential pass over the same successes.
        """
        if not jobs:
            return [], []
        if workers <= 1:
            return self._run_jobs_sequential(jobs, warm, deadline)
        store = self._ensure_snapshot()
        # The stripe-level MVCC pin: resolve the dispatched store's
        # current generation once, here, and hand it to every stripe so
        # pooled workers attach exactly this manifest even if a commit
        # lands while the batch is in flight.  Temp snapshots carry the
        # *store's* generation numbering, recorded at save time.
        if store == self._store_path:
            dispatch_generation: int | None = self.catalog.generation
        else:
            dispatch_generation = self._snapshot_generation
        pending: dict[int, EvalJob] = {job.index: job for job in jobs}
        results: dict[int, JobResult] = {}
        failures: dict[int, JobFailure] = {}
        for attempt, delay in enumerate(self.retry_policy.delays("run-jobs")):
            if not pending:
                break
            if attempt:
                self._job_retries += len(pending)
                wait(deadline.clamp(delay))
            if deadline.expired:
                self._mark_timeouts(pending, failures)
                break
            batch = [pending[index] for index in sorted(pending)]
            stripes = [batch[k::workers] for k in range(workers)]
            pool = self._get_executor(workers)
            futures = [
                pool.submit(
                    run_worker_jobs, store, stripe, self.pool_capacity,
                    self.catalog.version, faults.active(), attempt,
                    dispatch_generation,
                )
                for stripe in stripes
                if stripe
            ]
            done, not_done = wait_futures(
                futures, timeout=deadline.remaining()
            )
            pool_broken = False
            for future in done:
                try:
                    items = future.result()
                except BrokenProcessPool:
                    pool_broken = True
                    continue
                for item in items:
                    if item.index not in pending:
                        continue
                    del pending[item.index]
                    if isinstance(item, JobResult):
                        results[item.index] = item
                    else:
                        # Typed worker-side failure (store corruption):
                        # permanent, never retried — bytes do not heal.
                        failures[item.index] = item
            if not_done:
                # Deadline hit with workers still running (e.g. stalled):
                # abandon this pool rather than joining a stuck process.
                self._deadline_expiries += 1
                for future in not_done:
                    future.cancel()
                self._discard_executor(join=False)
                self._mark_timeouts(pending, failures)
                break
            if pool_broken:
                # A worker died mid-stripe; respawn the pool and resubmit
                # whatever is still pending on the next attempt.
                self._pool_respawns += 1
                self._discard_executor(join=False)
        for index in sorted(pending):
            failures[index] = JobFailure(
                index=index,
                kind="worker-lost",
                message=(
                    f"worker died on every one of"
                    f" {self.retry_policy.max_attempts} attempt(s)"
                ),
                views=tuple(
                    name or xpath for xpath, name in pending[index].views
                ),
            )
        return (
            [results[index] for index in sorted(results)],
            [failures[index] for index in sorted(failures)],
        )

    def _run_jobs_sequential(
        self, jobs: list[EvalJob], warm: bool, deadline: Deadline
    ) -> tuple[list[JobResult], list[JobFailure]]:
        results: list[JobResult] = []
        failures: list[JobFailure] = []
        for job in jobs:
            if deadline.expired:
                failures.append(JobFailure(
                    index=job.index, kind="timeout",
                    message="batch deadline expired before this job ran",
                ))
                continue
            try:
                results.append(run_job(self.catalog, job, expect_warm=warm))
            except StoreCorrupt as exc:
                failures.append(JobFailure(
                    index=job.index, kind="store-corrupt",
                    message=str(exc),
                    views=exc.views or tuple(
                        name or xpath for xpath, name in job.views
                    ),
                    pages=exc.pages,
                ))
        return results, failures

    def _mark_timeouts(
        self, pending: dict[int, EvalJob], failures: dict[int, JobFailure]
    ) -> None:
        for index in sorted(pending):
            failures[index] = JobFailure(
                index=index, kind="timeout",
                message="batch deadline expired before this job finished",
                views=tuple(
                    name or xpath for xpath, name in pending[index].views
                ),
            )
        pending.clear()

    @staticmethod
    def _failure_error(failure: JobFailure) -> Exception:
        detail = f"job {failure.index}: {failure.message}"
        if failure.kind == "timeout":
            return QueryTimeout(detail)
        if failure.kind == "worker-lost":
            return WorkerLost(detail)
        if failure.kind == "store-corrupt":
            return StoreCorrupt(
                detail, pages=failure.pages, views=failure.views
            )
        return ServiceError(f"{failure.kind}: {detail}")

    def _get_executor(self, workers: int) -> ProcessPoolExecutor:
        """A worker pool kept alive across batches.

        Reusing processes lets the worker-side attachment memo
        (:mod:`repro.service.worker`) skip re-parsing the store between
        batches; the pool is rebuilt only when the worker count changes
        (or after :meth:`_discard_executor` dropped a broken one).
        """
        if self._executor is not None and self._executor_workers != workers:
            self._discard_executor(join=True)
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=workers)
            self._executor_workers = workers
        return self._executor

    def _discard_executor(self, join: bool = True) -> None:
        """Shut the pool down; ``join=False`` abandons stalled/broken
        workers instead of blocking on them (they exit on their own once
        their current task — bounded by the injected-stall ceiling —
        completes or their pipe closes)."""
        # Quantum state lives in-process (the token carries the full
        # cursor state), so a pool respawn does not invalidate
        # continuations wholesale: only sessions whose pinned generation
        # is no longer resolvable anywhere are dropped.
        self._expire_reaped_sessions()
        if self._executor is None:
            return
        executor = self._executor
        self._executor = None
        self._executor_workers = 0
        executor.shutdown(wait=join, cancel_futures=True)

    # -- internals ------------------------------------------------------------

    def _plan_batch(
        self,
        queries: Sequence[Pattern | str],
        planner: Planner | None = None,
    ) -> list[Plan]:
        """One plan per input, planning only once per distinct query text.

        The planner additionally memoizes by canonical form, so two
        spellings of the same canonical query still share one plan-cache
        entry; the text memo here just keeps byte-identical duplicates
        from paying even the cache lookup.
        """
        if planner is None:
            planner = self.planner
        plans: list[Plan] = []
        by_text: dict[str, Plan] = {}
        for query in queries:
            text = query if isinstance(query, str) else query.to_xpath()
            plan = by_text.get(text)
            if plan is None:
                plan = planner.plan(query)
                by_text[text] = plan
            plans.append(plan)
        return plans

    def _materialize_batch(
        self, plans: Sequence[Plan], catalog: ViewCatalog | None = None
    ) -> None:
        """Materialize every plan's views once, in first-need order.

        Page layout — and with it physical-read accounting — follows the
        order views first hit the store, so this mirrors the independent
        path's per-query materialization order exactly
        (:meth:`~repro.storage.catalog.ViewCatalog.add` is idempotent,
        so repeats were no-ops there too).
        """
        seen: set[int] = set()
        for plan in plans:
            if id(plan) in seen:
                continue
            seen.add(id(plan))
            self._materialize_plan(plan, catalog)

    def _evaluate_shared(
        self,
        queries: Sequence[Pattern | str],
        mode: Mode,
        emit_matches: bool,
        workers: int,
        deadline: Deadline,
        degrade: bool,
        resilient: bool,
        as_of: int | None = None,
    ) -> list[QueryOutcome]:
        """Shared-scan batch execution (plan CSE + stream replay).

        Phase 1 resolves each input in order: refuted queries answer
        immediately, repeats of an already-seen eval node join its
        consumer list, result-cache hits replay as before, and the rest
        found new nodes.  Phase 2 answers each distinct node once — from
        the epoch-keyed stream cache when possible, otherwise by running
        its job (sequentially here, or through the resilient dispatcher
        for ``evaluate_parallel``).  Phase 3 fans results out: every
        consumer receives the node's match stream and the run's recorded
        counters (replay accounting — see :mod:`repro.service.shared`),
        so outcomes and merged totals are byte-identical to the
        independent path while only the distinct nodes did work.
        """
        catalog, planner = self._resolve_read(as_of)
        generation = catalog.generation
        stats = self._shared_stats
        stats.batches += 1
        stats.queries += len(queries)
        plans = self._plan_batch(queries, planner)
        outcomes: list[QueryOutcome | None] = [None] * len(plans)
        nodes: dict[tuple, SharedNode] = {}
        for i, plan in enumerate(plans):
            canonical = plan.query.to_xpath()
            if planner.refutes(plan.query):
                outcomes[i] = self._refuted_outcome(plan, canonical)
                continue
            key = node_key(plan, mode, emit_matches)
            node = nodes.get(key)
            if node is not None:
                node.consumers.append(i)
                continue
            cached = self._result_cache.get(
                (generation, canonical, mode.value, emit_matches)
            )
            if cached is not None:
                outcomes[i] = replace(cached, cached=True)
                continue
            nodes[key] = SharedNode(
                ordinal=len(nodes), digest=node_digest(key), plan=plan,
                consumers=[i],
            )
        stats.distinct_nodes += len(nodes)
        # The resolved pair's epoch stamps: frozen for a snapshot pair,
        # so pinned readers keep hitting their pre-commit streams.
        epoch = (catalog.maintenance_epoch, planner.generation)
        fresh: list[SharedNode] = []
        for node in nodes.values():
            replayed = self._stream_cache.get((epoch, node.digest))
            if replayed is not None:
                node.replayed = replayed
                stats.stream_hits += 1
            else:
                fresh.append(node)
        self._materialize_batch([node.plan for node in fresh], catalog)
        jobs = [
            EvalJob.from_patterns(
                node.first, node.plan.query, node.plan.all_views,
                node.plan.algorithm, node.plan.scheme, mode=mode,
                emit_matches=emit_matches, generation=as_of,
            )
            for node in fresh
        ]
        stats.jobs_run += len(jobs)
        if resilient:
            try:
                results, failures = self._run_jobs_resilient(
                    jobs, workers, warm=True, deadline=deadline
                )
            except StoreCorrupt as exc:
                results = []
                failures = [
                    JobFailure(
                        index=job.index, kind="store-corrupt",
                        message=str(exc), views=exc.views, pages=exc.pages,
                    )
                    for job in jobs
                ]
        else:
            # The sequential entry point has no degraded mode: a typed
            # failure propagates raw, exactly like ``_evaluate_one``.
            results = [
                run_job(catalog, job, expect_warm=True) for job in jobs
            ]
            failures = []
        for result in results:
            stats.executed.merge(result.counters)
            stats.executed_io.merge(result.io)
        resolved = {result.index: result for result in results}
        failed = {failure.index: failure for failure in failures}
        # Sequential batches see evolving result-cache state (a repeat
        # later in the batch would have hit the entry its first
        # occurrence just stored); the parallel path checks the cache
        # for every input up front, so its repeats all report cold.
        dupes_cached = not resilient and self._result_cache.capacity > 0
        for node in nodes.values():
            result = node.replayed
            if result is None:
                result = resolved.get(node.first)
            if result is not None:
                if node.replayed is None:
                    self._stream_cache.put((epoch, node.digest), result)
                outcome = self._outcome_from(result, node.plan)
                outcome.shared = node.replayed is not None
                self._result_cache.put(
                    (generation, outcome.query, mode.value, emit_matches),
                    outcome,
                )
                if resilient:
                    names = self._plan_view_names(node.plan)
                    for __ in node.consumers:
                        for name in names:
                            self.breaker.record_success(name)
                outcomes[node.first] = outcome
                for i in node.consumers[1:]:
                    outcomes[i] = replace(
                        outcome, cached=dupes_cached, shared=True
                    )
                stats.replayed_queries += len(node.consumers) - (
                    0 if node.replayed is not None else 1
                )
                continue
            failure = failed[node.first]
            for i in node.consumers:
                self._note_failure(node.plan, failure)
                if degrade and failure.kind != "timeout":
                    outcomes[i] = self._evaluate_degraded(
                        node.plan, mode, emit_matches
                    )
                else:
                    self._failed_queries += 1
                    outcomes[i] = self._error_outcome(node.plan, failure)
        assert all(outcome is not None for outcome in outcomes)
        return outcomes

    def _evaluate_one(
        self,
        query: Pattern | str,
        mode: Mode,
        emit_matches: bool,
        as_of: int | None = None,
    ) -> QueryOutcome:
        catalog, planner = self._resolve_read(as_of)
        plan = planner.plan(query)
        canonical = plan.query.to_xpath()
        if planner.refutes(plan.query):
            return self._refuted_outcome(plan, canonical)
        key = (catalog.generation, canonical, mode.value, emit_matches)
        cached = self._result_cache.get(key)
        if cached is not None:
            return replace(cached, cached=True)
        self._materialize_plan(plan, catalog)
        job = EvalJob.from_patterns(
            0, plan.query, plan.all_views, plan.algorithm, plan.scheme,
            mode=mode, emit_matches=emit_matches, generation=as_of,
        )
        outcome = self._outcome_from(
            run_job(catalog, job, expect_warm=True), plan
        )
        self._result_cache.put(key, outcome)
        return outcome

    @staticmethod
    def _outcome_from(result: JobResult, plan: Plan) -> QueryOutcome:
        return QueryOutcome(
            query=plan.query.to_xpath(),
            combo=result.combo,
            match_keys=result.match_keys,
            match_count=result.match_count,
            counters=result.counters,
            io=result.io,
            elapsed_s=result.elapsed_s,
            plan_views=[view.to_xpath() for view in plan.all_views],
        )

    # -- preemptible serving ---------------------------------------------------

    def evaluate_quantum(
        self,
        query: Pattern | str,
        mode: Mode | str = Mode.MEMORY,
        emit_matches: bool = True,
        budget: QuantumBudget | None = None,
        as_of: int | None = None,
    ) -> QuantumOutcome:
        """Answer the first quantum of ``query``; suspend at ``budget``.

        The serving entry point (``repro.server`` sits on top of this):
        plans and materializes like :meth:`evaluate`, but bounds the run
        to one quantum and — when the budget expires first — returns a
        continuation token instead of blocking until completion.  With
        ``budget=None`` the quantum is unbounded and the outcome is
        always ``done``.

        Quanta run in-process, bypassing the worker pool and the result
        cache (a paginated answer is a stream, not a cacheable value);
        refuted queries and non-ViewJoin plans answer in a single done
        outcome.  Store corruption mid-quantum degrades exactly like
        :meth:`evaluate_parallel`: breaker fed, query re-answered from
        base views, ``degraded=True``.

        The issued continuation token is stamped with the generation the
        evaluation pinned (``as_of``, or the current one): maintenance
        commits no longer expire it — the chain keeps resuming
        byte-identically against that generation's snapshot until GC
        reaps it.
        """
        mode = Mode.parse(mode)
        catalog, planner = self._resolve_read(as_of)
        plan = planner.plan(query)
        canonical = plan.query.to_xpath()
        if planner.refutes(plan.query):
            return self._quantum_from_outcome(
                self._refuted_outcome(plan, canonical)
            )
        if Algorithm.parse(plan.algorithm) is not Algorithm.VIEWJOIN:
            outcome = self._evaluate_one(query, mode, emit_matches,
                                         as_of=as_of)
            self._advisor_observe((outcome,))
            return self._quantum_from_outcome(outcome, preemptible=False)
        self._materialize_plan(plan, catalog)
        begin = time.perf_counter()
        try:
            result, state = engine_evaluate_quantum(
                plan.query, catalog, plan.all_views, plan.algorithm,
                plan.scheme, mode=mode, emit_matches=emit_matches,
                budget=budget, as_of=as_of,
            )
        except StoreCorrupt as exc:
            return self._degraded_quantum(
                plan, mode, emit_matches, exc, begin, catalog=catalog
            )
        self._quanta_served += 1
        outcome = QuantumOutcome(
            query=canonical,
            combo=combo_label(plan.algorithm, plan.scheme),
            page=[tuple(e.start for e in m) for m in result.matches],
            match_count=result.match_count,
            counters=result.counters,
            io=result.io,
            elapsed_s=time.perf_counter() - begin,
            done=state is None,
            plan_views=[view.to_xpath() for view in plan.all_views],
        )
        if state is None:
            for name in self._plan_view_names(plan):
                self.breaker.record_success(name)
            return outcome
        sid = self._new_continuation(catalog.generation)
        outcome.preempted = True
        outcome.token = encode_token(self._continuation_payload(
            plan, mode, emit_matches, budget, sid, state, quanta=1,
            io=result.io, catalog=catalog,
        ))
        return outcome

    def resume_quantum(self, token: str) -> QuantumOutcome:
        """Resume a suspended query for one more quantum.

        Raises:
            ContinuationMalformed: the token bytes or payload are damaged
                (truncated, bit-flipped, tampered) — typed, never a crash.
            ContinuationExpired: the token is intact but dead — its
                pinned generation has been garbage-collected, its
                session died with a quarantine-era GC, advisor drop or
                shutdown, or it was issued by another service instance.
                A maintenance commit alone no longer expires tokens: the
                chain resumes against its generation's pinned snapshot.
        """
        payload = decode_token(token)
        parts = self._continuation_parts(payload)
        sid = parts["sid"]
        if sid not in self._continuations:
            self._continuations_expired += 1
            raise ContinuationExpired(
                f"continuation {sid!r} is not live on this service"
                " (its generation was garbage-collected, or it expired"
                " with a quarantine, advisor drop, or shutdown — or was"
                " issued by another service instance)"
            )
        generation = parts["generation"]
        try:
            catalog, planner = self._resolve_read(generation)
        except ServiceError:
            self._continuations.pop(sid, None)
            self._continuations_expired += 1
            raise ContinuationExpired(
                f"continuation's pinned store generation {generation}"
                " has been garbage-collected (re-issue the query"
                " against the current generation)"
            ) from None
        if (
            parts["maintenance_epoch"] != catalog.maintenance_epoch
            or parts["store_version"] != catalog.store_version
        ):
            self._continuations.pop(sid, None)
            self._continuations_expired += 1
            self._release_generation(generation)
            raise ContinuationExpired(
                "continuation's epoch stamps do not match its pinned"
                " generation (issued by another service instance?)"
            )
        views = parts["views"]
        for view in views:
            try:
                catalog.get(view, parts["scheme"])
            except StorageError:
                self._continuations.pop(sid, None)
                self._continuations_expired += 1
                self._release_generation(generation)
                raise ContinuationExpired(
                    f"planned view {view.to_xpath()!r} is no longer"
                    " materialized (quarantined or dropped)"
                ) from None
        begin = time.perf_counter()
        try:
            result, state = engine_evaluate_quantum(
                parts["query"], catalog, views, Algorithm.VIEWJOIN,
                parts["scheme"], mode=parts["mode"],
                emit_matches=parts["emit"], budget=parts["budget"],
                state=parts["state"], as_of=generation,
            )
        except StoreCorrupt as exc:
            self._continuations.pop(sid, None)
            plan = planner.plan(parts["query"])
            outcome = self._degraded_quantum(
                plan, parts["mode"], parts["emit"], exc, begin,
                quanta=parts["quanta"] + 1, catalog=catalog,
            )
            self._release_generation(generation)
            return outcome
        self._quanta_served += 1
        quanta = parts["quanta"] + 1
        prior = parts["io"]
        io = IOStats(
            logical_reads=result.io.logical_reads + prior[0],
            physical_reads=result.io.physical_reads + prior[1],
            pages_written=result.io.pages_written + prior[2],
            read_seconds=result.io.read_seconds,
            write_seconds=result.io.write_seconds,
        )
        outcome = QuantumOutcome(
            query=parts["query"].to_xpath(),
            combo=combo_label(Algorithm.VIEWJOIN, parts["scheme"]),
            page=[tuple(e.start for e in m) for m in result.matches],
            match_count=result.match_count,
            counters=result.counters,
            io=io,
            elapsed_s=time.perf_counter() - begin,
            done=state is None,
            quanta=quanta,
            plan_views=[view.to_xpath() for view in views],
        )
        if state is None:
            self._continuations.pop(sid, None)
            self._continuations_completed += 1
            self._release_generation(generation)
            return outcome
        record = self._continuations[sid]
        record["quanta"] = quanta
        next_payload = dict(payload)
        next_payload["quanta"] = quanta
        next_payload["io"] = [
            io.logical_reads, io.physical_reads, io.pages_written,
        ]
        next_payload["state"] = state.to_payload()
        outcome.preempted = True
        outcome.token = encode_token(next_payload)
        return outcome

    def continuation_metrics(self) -> dict[str, int]:
        """Suspend/resume bookkeeping for operators and ``/metrics``."""
        return {
            "active": len(self._continuations),
            "issued": self._continuations_issued,
            "completed": self._continuations_completed,
            "expired": self._continuations_expired,
            "purged": self._continuations_purged,
            "quanta_served": self._quanta_served,
        }

    def _new_continuation(self, generation: int) -> str:
        self._continuation_seq += 1
        sid = f"c{self._continuation_seq}"
        self._continuations[sid] = {"quanta": 1, "generation": generation}
        self._continuations_issued += 1
        return sid

    def _expire_continuations(self) -> int:
        """Invalidate every live continuation (shutdown only); stale
        tokens resume as typed :class:`ContinuationExpired` instead of
        touching recycled state.  Returns how many were dropped."""
        dropped = len(self._continuations)
        if dropped:
            self._continuations.clear()
            self._continuations_purged += dropped
        return dropped

    def _expire_reaped_sessions(self) -> int:
        """Drop only the sessions whose pinned generation is no longer
        resolvable — neither the live generation nor a held snapshot.
        Sessions on resolvable generations survive pool respawns and
        maintenance commits untouched (their state is in-process)."""
        live = {self.catalog.generation} | set(self._generation_snapshots)
        stale = [
            sid for sid, record in self._continuations.items()
            if record.get("generation") not in live
        ]
        for sid in stale:
            del self._continuations[sid]
        self._continuations_purged += len(stale)
        return len(stale)

    def _continuation_payload(
        self,
        plan: Plan,
        mode: Mode,
        emit_matches: bool,
        budget: QuantumBudget | None,
        sid: str,
        state: PlanState,
        quanta: int,
        io: IOStats,
        catalog: ViewCatalog,
    ) -> dict:
        return {
            "sid": sid,
            "generation": catalog.generation,
            "store_version": catalog.store_version,
            "maintenance_epoch": catalog.maintenance_epoch,
            "query": plan.query.to_xpath(),
            "views": [
                [view.to_xpath(), view.name] for view in plan.all_views
            ],
            "algorithm": Algorithm.parse(plan.algorithm).value,
            "scheme": Scheme.parse(plan.scheme).value,
            "mode": mode.value,
            "emit": emit_matches,
            "budget": budget.as_dict() if budget is not None else None,
            "quanta": quanta,
            "io": [io.logical_reads, io.physical_reads, io.pages_written],
            "state": state.to_payload(),
        }

    def _continuation_parts(self, payload: dict) -> dict:
        """Validate a decoded token payload, field by field.

        A payload that passed the codec's checksum can still be hostile
        (re-encoded with a fresh checksum); every structural assumption
        is checked here so a bad token dies typed at the boundary, not
        as an ``AttributeError`` inside a cursor.
        """
        def bad(message: str) -> None:
            raise ContinuationMalformed(
                f"continuation payload is invalid: {message}"
            )

        sid = payload.get("sid")
        if not isinstance(sid, str) or not sid:
            bad("missing session id")
        for key in (
            "generation", "store_version", "maintenance_epoch", "quanta"
        ):
            if not isinstance(payload.get(key), int):
                bad(f"{key} must be an int")
        if payload["quanta"] < 1:
            bad("quanta must be positive")
        if payload.get("algorithm") != Algorithm.VIEWJOIN.value:
            bad("only ViewJoin plans are resumable")
        if not isinstance(payload.get("emit"), bool):
            bad("emit must be a bool")
        if not isinstance(payload.get("query"), str):
            bad("query must be a string")
        if not isinstance(payload.get("scheme"), str):
            bad("scheme must be a string")
        if not isinstance(payload.get("mode"), str):
            bad("mode must be a string")
        views_payload = payload.get("views")
        if not isinstance(views_payload, list) or not views_payload:
            bad("views must be a non-empty list")
        for item in views_payload:
            if (
                not isinstance(item, (list, tuple)) or len(item) != 2
                or not isinstance(item[0], str)
                or not (item[1] is None or isinstance(item[1], str))
            ):
                bad("views must be [xpath, name] pairs")
        prior_io = payload.get("io")
        if (
            not isinstance(prior_io, list) or len(prior_io) != 3
            or any(
                not isinstance(value, int) or value < 0
                for value in prior_io
            )
        ):
            bad("io must be three non-negative ints")
        try:
            query = parse_pattern(payload["query"])
            views = [
                parse_pattern(xpath, name=name)
                for xpath, name in views_payload
            ]
            scheme = Scheme.parse(payload["scheme"])
            mode = Mode.parse(payload["mode"])
        except ReproError as exc:
            raise ContinuationMalformed(
                f"continuation plan is invalid: {exc}"
            ) from None
        return {
            "sid": sid,
            "generation": payload["generation"],
            "store_version": payload["store_version"],
            "maintenance_epoch": payload["maintenance_epoch"],
            "query": query,
            "views": views,
            "scheme": scheme,
            "mode": mode,
            "emit": payload["emit"],
            "budget": QuantumBudget.from_dict(payload.get("budget")),
            "state": PlanState.from_payload(payload.get("state")),
            "quanta": payload["quanta"],
            "io": prior_io,
        }

    @staticmethod
    def _quantum_from_outcome(
        outcome: QueryOutcome, quanta: int = 1, preemptible: bool = True
    ) -> QuantumOutcome:
        """Adapt a one-shot outcome (refuted / non-ViewJoin / degraded)
        into a single done quantum."""
        return QuantumOutcome(
            query=outcome.query,
            combo=outcome.combo,
            page=list(outcome.match_keys),
            match_count=outcome.match_count,
            counters=outcome.counters,
            io=outcome.io,
            elapsed_s=outcome.elapsed_s,
            done=True,
            quanta=quanta,
            preemptible=preemptible,
            degraded=outcome.degraded,
            refuted=outcome.refuted,
            error=outcome.error,
            plan_views=list(outcome.plan_views),
        )

    def _degraded_quantum(
        self,
        plan: Plan,
        mode: Mode,
        emit_matches: bool,
        exc: StoreCorrupt,
        begin: float,
        quanta: int = 1,
        catalog: ViewCatalog | None = None,
    ) -> QuantumOutcome:
        """Store corruption mid-quantum: feed the breaker, re-answer from
        base views, and finish the chain in one degraded done quantum."""
        failure = JobFailure(
            index=0, kind="store-corrupt", message=str(exc),
            views=exc.views or tuple(self._plan_view_names(plan)),
            pages=exc.pages,
        )
        self._note_failure(plan, failure)
        outcome = self._quantum_from_outcome(
            self._evaluate_degraded(plan, mode, emit_matches, catalog),
            quanta=quanta,
        )
        outcome.elapsed_s = time.perf_counter() - begin
        return outcome

    # -- resilience -----------------------------------------------------------

    @staticmethod
    def _plan_view_names(plan: Plan) -> list[str]:
        return [view.name or view.to_xpath() for view in plan.views]

    def _note_failure(self, plan: Plan, failure: JobFailure) -> None:
        """Feed one failure to the circuit breaker; quarantine trips."""
        names = [
            name for name in failure.views if not name.startswith("base:")
        ] or self._plan_view_names(plan)
        tripped = [
            name for name in names
            if self.breaker.record_failure(name, failure.kind)
        ]
        if tripped:
            self._quarantine(tripped)

    def _quarantine(self, names: Sequence[str]) -> None:
        """Stop planning over (and snapshotting) the named views.

        Three layers move together: the planner excludes them from
        future plans, the catalog drops their rows (version bump — the
        next snapshot and every pooled worker invalidate, so corrupt
        pages are never copied or served again), and the result cache is
        emptied because cached entries may have been computed from pages
        that were already bad.
        """
        self.planner.quarantine(names)
        for name in names:
            self.catalog.remove_view(name)
        self.invalidate_results()
        # Suspended queries are NOT purged wholesale: a session resting
        # on a pinned snapshot still holds the view (copy-on-write
        # pages), and a live-generation session that did plan over a
        # now-dropped view dies typed at resume's per-view check.

    def _evaluate_degraded(
        self,
        plan: Plan,
        mode: Mode,
        emit_matches: bool,
        catalog: ViewCatalog | None = None,
    ) -> QueryOutcome:
        """Re-answer a failed query from base views over the base
        document — a fresh in-memory catalog, untouched by whatever
        damaged the store.  ``catalog`` picks which generation's
        document is the base truth (a pinned snapshot's for a snapshot
        read, the live one otherwise).  Fault injection is suspended for
        the rerun: the chaos harness simulates *store* failures, and
        this path is the recovery route that must stay correct."""
        if catalog is None:
            catalog = self.catalog
        self._degraded_queries += 1
        base_views = [
            self.planner._base_view(qnode) for qnode in plan.query.nodes
        ]
        job = EvalJob.from_patterns(
            0, plan.query, base_views, plan.algorithm, plan.scheme,
            mode=mode, emit_matches=emit_matches,
        )
        fallback = ViewCatalog(
            catalog.document,
            partial_distance=catalog.partial_distance,
        )
        try:
            with faults.suspended():
                result = run_job(fallback, job, expect_warm=False)
        finally:
            fallback.close()
        outcome = self._outcome_from(result, plan)
        outcome.plan_views = [view.to_xpath() for view in base_views]
        outcome.degraded = True
        return outcome

    @staticmethod
    def _error_outcome(plan: Plan, failure: JobFailure) -> QueryOutcome:
        return QueryOutcome(
            query=plan.query.to_xpath(),
            combo=combo_label(plan.algorithm, plan.scheme),
            match_keys=[],
            match_count=0,
            counters=Counters(),
            io=IOStats(),
            elapsed_s=0.0,
            error=f"{failure.kind}: {failure.message}",
        )

    def resilience_metrics(self) -> dict[str, object]:
        """Quarantine/retry/degradation counters for operators."""
        return {
            "quarantined_views": list(self.breaker.quarantined),
            "breaker": self.breaker.metrics(),
            "degraded_queries": self._degraded_queries,
            "failed_queries": self._failed_queries,
            "job_retries": self._job_retries,
            "pool_respawns": self._pool_respawns,
            "deadline_expiries": self._deadline_expiries,
            "pinned_generations": len(self._generation_snapshots),
            "generations_reaped": self._generations_reaped,
            "generation_cache_evictions": self._generation_cache_evictions,
        }

    @staticmethod
    def _refuted_outcome(plan: Plan, canonical: str) -> QueryOutcome:
        return QueryOutcome(
            query=canonical,
            combo=combo_label(plan.algorithm, plan.scheme),
            match_keys=[],
            match_count=0,
            counters=Counters(),
            io=IOStats(),
            elapsed_s=0.0,
            refuted=True,
        )

    def _assemble(
        self, outcomes: Sequence[QueryOutcome], elapsed: float
    ) -> BatchResult:
        counters = Counters()
        io = IOStats()
        for outcome in outcomes:
            counters.merge(outcome.counters)
            io.merge(outcome.io)
        # Batch chokepoint of the workload recorder: every batch/parallel
        # outcome passes through here exactly once (``evaluate`` records
        # its own), outside the per-job loops.
        self._advisor_observe(outcomes)
        return BatchResult(
            outcomes=list(outcomes),
            counters=counters,
            io=io,
            elapsed_s=elapsed,
        )

    def snapshot(self) -> str:
        """Ensure (and return) an on-disk store reflecting the current
        view set.  Parallel dispatch calls this lazily; exposing it lets
        callers pay the save cost up front, outside any timed region."""
        return self._ensure_snapshot()

    def _ensure_snapshot(self) -> str:
        """Path of a store that reflects the catalog's current view set.

        A service attached to an up-to-date on-disk store hands workers
        that store directly; otherwise the catalog is saved to a private
        temp directory, re-saved only when the view set has grown since.
        """
        version = self.catalog.version
        if self._store_path is not None and version == self._store_version:
            return self._store_path
        if self._snapshot_dir is None:
            self._snapshot_dir = tempfile.mkdtemp(prefix="repro-service-")
        if self._snapshot_version != version:
            save_catalog(self.catalog, self._snapshot_dir)
            self._snapshot_version = version
            # The temp store numbers its generations itself (one per
            # save); record the published one for stripe pinning.
            self._snapshot_generation = read_store_version(
                self._snapshot_dir
            )[0]
        return self._snapshot_dir

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Release the executor, snapshot dir and owned catalog.

        Idempotent, and safe to call after a failed batch: ``__exit__``
        runs it even when an evaluation raised, so a ``with`` block can
        never leak a :class:`ProcessPoolExecutor`.
        """
        if self._closed:
            return
        self._closed = True
        self._expire_continuations()
        self._discard_executor(join=True)
        self._stream_cache.close()
        for pin in self._generation_snapshots.values():
            pin.catalog.close()
        self._generation_snapshots.clear()
        self._user_pins.clear()
        if self._snapshot_dir is not None:
            shutil.rmtree(self._snapshot_dir, ignore_errors=True)
            self._snapshot_dir = None
            self._snapshot_version = None
            self._snapshot_generation = None
        if self._owns_catalog:
            self.catalog.close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
