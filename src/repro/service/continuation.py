"""Continuation tokens for preemptible queries.

A suspended evaluation leaves the service as an opaque, self-contained
token the client hands back to resume.  Wire format (before base64)::

    MAGIC "VJCT" | version u8 | crc32(body) u32-le | body

where ``body`` is the zlib-compressed canonical JSON payload.  The
payload stamps everything needed to (a) rebuild the identical plan —
canonical query text, the planned view list, algorithm/scheme/mode,
emit flag and quantum budget — and (b) resolve the world it runs in:
the pinned store ``generation`` (MVCC, DESIGN.md §16 — a maintenance
commit no longer expires the token; the chain resumes against the
generation's snapshot until GC reaps it), that generation's
``store_version`` and ``maintenance_epoch`` stamps, and a service-local
session id whose registry entry dies with GC and shutdown.

Version 2 added the ``generation`` stamp; version-1 tokens (pre-MVCC)
are rejected typed as an unsupported version.

Decoding failures are **typed, never crashes**: every way a token can be
damaged — truncated, bit-flipped, re-encoded garbage, a tampered payload
with a dutifully recomputed checksum — surfaces as
:class:`~repro.errors.ContinuationMalformed`; staleness is the service's
call (:class:`~repro.errors.ContinuationExpired`), not the codec's.
"""

from __future__ import annotations

import base64
import binascii
import json
import struct
import zlib

from repro.errors import ContinuationMalformed

TOKEN_MAGIC = b"VJCT"
TOKEN_VERSION = 2

_HEADER = struct.Struct("<4sBI")


def encode_token(payload: dict) -> str:
    """Serialize a continuation payload to an opaque URL-safe string."""
    raw = json.dumps(
        payload, separators=(",", ":"), sort_keys=True
    ).encode("utf-8")
    body = zlib.compress(raw, 6)
    header = _HEADER.pack(
        TOKEN_MAGIC, TOKEN_VERSION, zlib.crc32(body) & 0xFFFFFFFF
    )
    return base64.urlsafe_b64encode(header + body).decode("ascii")


def decode_token(token: str) -> dict:
    """Inverse of :func:`encode_token`.

    Raises:
        ContinuationMalformed: for anything that is not an intact token
            produced by :func:`encode_token` — bad base64, short blob,
            wrong magic, unknown version, checksum mismatch, or an
            undecodable/non-object payload.
    """
    if not isinstance(token, str) or not token:
        raise ContinuationMalformed("empty continuation token")
    try:
        blob = base64.urlsafe_b64decode(token.encode("ascii"))
    except (binascii.Error, ValueError, UnicodeEncodeError) as exc:
        raise ContinuationMalformed(
            f"continuation token is not valid base64: {exc}"
        ) from None
    if len(blob) < _HEADER.size:
        raise ContinuationMalformed("continuation token is truncated")
    magic, version, crc = _HEADER.unpack_from(blob)
    if magic != TOKEN_MAGIC:
        raise ContinuationMalformed("continuation token has a bad header")
    if version != TOKEN_VERSION:
        raise ContinuationMalformed(
            f"unsupported continuation token version {version}"
            f" (this build speaks version {TOKEN_VERSION})"
        )
    body = blob[_HEADER.size:]
    if zlib.crc32(body) & 0xFFFFFFFF != crc:
        raise ContinuationMalformed(
            "continuation token failed its integrity checksum"
        )
    try:
        payload = json.loads(zlib.decompress(body).decode("utf-8"))
    except (zlib.error, UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ContinuationMalformed(
            f"continuation token payload is undecodable: {exc}"
        ) from None
    if not isinstance(payload, dict):
        raise ContinuationMalformed(
            "continuation token payload must be an object"
        )
    return payload
