"""Memoized sub-plan streams: the shared executor's stream cache.

A :class:`StreamCache` keeps the :class:`~repro.service.jobs.JobResult`
of recently executed eval nodes so later batches can replay a node's
match stream (and its recorded, deterministic accounting) without
touching the view store at all.

Keys are ``((maintenance_epoch, planner_generation), node_digest)`` —
the epoch pair changes on every catalog/plan mutation (view
registration, adoption, quarantine, maintenance commit), so a stale
stream can never match a post-update batch's key.  Since the MVCC work
(DESIGN.md §16) the epoch pair is per *generation*: a maintenance
commit rolls the key instead of purging, so readers pinned to an older
generation keep replaying their streams; entries of GC-reaped
generations are dropped via :meth:`StreamCache.evict`.  View-set
mutations inside a generation (register, adoption, quarantine) still
clear the cache outright through ``invalidate_results``.

Spill buffer
------------
Large match streams are not kept as Python lists: above
``spill_threshold`` keys the stream is packed row-per-key into pager
pages via :class:`~repro.storage.records.MatchKeyCodec` on the cache's
**own** pager.  Rehydration reads back through that pager's buffer
pool, so every replayed key is accounted as a logical (and, on a cold
pool, physical) read in :attr:`io` — the cache's I/O is observable,
never hidden, and never mixed into query outcomes (those replay the
original run's recorded I/O).  The cache is bounded twice: entry count
(LRU) and total spilled/resident bytes (``byte_budget``).  Page space
of evicted entries is reclaimed wholesale when the cache is cleared
(every catalog mutation), not per eviction.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.caching import CacheStats, LRUCache
from repro.service.jobs import JobResult
from repro.storage.lists import StoredList
from repro.storage.pager import IOStats, Pager
from repro.storage.records import MatchKeyCodec


@dataclass
class _StreamEntry:
    """One cached node stream: the result shell plus its key storage."""

    result: JobResult
    stored: StoredList | None
    weight: int


class StreamCache:
    """Bounded, I/O-accounted cache of eval-node match streams.

    Args:
        capacity: max cached nodes; ``<= 0`` disables the cache.
        byte_budget: max total bytes across entries (LRU-evicted past it).
        spill_threshold: streams with at least this many match keys are
            packed into pager pages instead of held as Python lists.
    """

    def __init__(
        self,
        capacity: int,
        byte_budget: int = 32 << 20,
        spill_threshold: int = 256,
    ):
        self._cache = LRUCache(capacity, weight_budget=byte_budget)
        self.spill_threshold = spill_threshold
        self._pager: Pager | None = Pager() if capacity > 0 else None
        self._retired_io = IOStats()
        self._spill_serial = 0
        self.spilled_streams = 0
        self.spilled_bytes = 0

    @property
    def capacity(self) -> int:
        return self._cache.capacity

    @property
    def stats(self) -> CacheStats:
        return self._cache.stats

    @property
    def io(self) -> IOStats:
        """Spill-buffer I/O (reads replayed streams cost; writes to pack).

        Cumulative across :meth:`clear` — operators see totals, not the
        current epoch's slice.
        """
        combined = IOStats()
        combined.merge(self._retired_io)
        if self._pager is not None:
            combined.merge(self._pager.total_stats())
        return combined

    def __len__(self) -> int:
        return len(self._cache)

    def get(self, key) -> JobResult | None:
        """Replay a cached node stream, rehydrating spilled keys through
        the spill pager's buffer pool (accounted in :attr:`io`)."""
        entry = self._cache.get(key)
        if entry is None:
            return None
        if entry.stored is not None:
            keys = list(entry.stored.scan())
        else:
            keys = list(entry.result.match_keys)
        return replace(entry.result, match_keys=keys)

    def put(self, key, result: JobResult) -> None:
        if self._cache.capacity <= 0:
            return
        keys = result.match_keys
        stored = None
        if len(keys) >= self.spill_threshold and self._pager is not None:
            self._spill_serial += 1
            stored = StoredList(
                self._pager,
                MatchKeyCodec(len(keys[0])),
                name=f"stream:{self._spill_serial}",
                columnar=False,
            )
            stored.extend(keys)
            stored.finalize()
            weight = stored.size_bytes
            self.spilled_streams += 1
            self.spilled_bytes += weight
            result = replace(result, match_keys=[])
        else:
            arity = len(keys[0]) if keys else 1
            weight = len(keys) * arity * 4
        self._cache.put(key, _StreamEntry(result, stored, weight),
                        weight=weight)

    def evict(self, predicate) -> int:
        """Drop entries whose *key* matches ``predicate`` (GC of reaped
        generations).  Spill pages of evicted entries are not reclaimed
        individually — the next :meth:`clear` reclaims them wholesale —
        but their bytes leave the weight budget immediately."""
        return self._cache.invalidate(predicate)

    def clear(self) -> int:
        """Drop every stream and reclaim the spill pages; returns how
        many entries were dropped."""
        dropped = self._cache.invalidate()
        if self._pager is not None and self._pager.page_file.num_pages:
            self._retired_io.merge(self._pager.total_stats())
            self._pager.close()
            self._pager = Pager()
        return dropped

    def close(self) -> None:
        if self._pager is not None:
            self._pager.close()
            self._pager = None
