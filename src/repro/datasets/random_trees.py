"""Bounded random document generator.

Produces random region-labelled trees with controllable size, depth,
fanout and tag alphabet.  Depth is bounded so the differential tests can
compare engines against the exponential naive oracle without blow-ups,
while still exercising recursion (the same tag nesting inside itself),
which is where pointer-skipping logic is most fragile.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.xmltree.document import Document, DocumentBuilder


def generate(
    size: int = 200,
    tags: Sequence[str] = ("a", "b", "c", "d", "e", "f"),
    max_depth: int = 8,
    max_fanout: int = 4,
    seed: int | None = None,
    root_tag: str = "root",
) -> Document:
    """Generate a random document.

    Args:
        size: approximate number of non-root nodes.
        tags: tag alphabet for non-root nodes (uniformly drawn).
        max_depth: maximum node level (root is level 0).
        max_fanout: maximum children attached per expansion step.
        seed: RNG seed for reproducibility.
        root_tag: tag of the single root element.

    Returns:
        A document with at most ``size`` non-root nodes.
    """
    rng = random.Random(seed)
    builder = DocumentBuilder(name=f"random-{seed}")
    remaining = size

    def grow(depth: int) -> None:
        nonlocal remaining
        if depth >= max_depth or remaining <= 0:
            return
        for _ in range(rng.randint(0, max_fanout)):
            if remaining <= 0:
                return
            remaining -= 1
            builder.open(rng.choice(list(tags)))
            grow(depth + 1)
            builder.close()

    builder.open(root_tag)
    # Keep expanding top-level subtrees until the size budget is used, so
    # small fanout rolls cannot end the document prematurely.
    while remaining > 0:
        before = remaining
        grow(1)
        if remaining == before:
            remaining -= 1
            builder.leaf(rng.choice(list(tags)))
    builder.close()
    return builder.build()
