"""Synthetic dataset generators.

* :mod:`repro.datasets.xmark` — an XMark-schema auction-site generator
  (stands in for the original ``xmlgen`` tool; see DESIGN.md §1);
* :mod:`repro.datasets.nasa` — a NASA-ADC-schema generator with skewed
  element distribution;
* :mod:`repro.datasets.random_trees` — bounded random trees for property
  tests and micro-benchmarks.
"""

from repro.datasets import nasa, random_trees, xmark

__all__ = ["nasa", "random_trees", "xmark"]
