"""Synthetic XMark auction-site generator.

A from-scratch generator for the XMark benchmark schema (Schmidt et al.,
"The XML Benchmark Project"), standing in for the original ``xmlgen`` C
tool (see DESIGN.md §1).  It reproduces the structural properties the
evaluation depends on:

* the six-continent ``regions`` hierarchy with nested ``item`` structure;
* the recursive ``description -> parlist -> listitem -> parlist`` text
  markup (the recursion that stresses same-tag nesting);
* one-to-many fan-outs (``bidder`` per auction, ``interest`` per person,
  ``incategory`` per item) that drive tuple-scheme redundancy;
* a ``scale`` knob analogous to XMark's scaling factor — document size
  grows linearly in ``scale`` (``scale=1.0`` is roughly 6k elements, so
  the paper's 100MB..700MB sweep maps to ``scale`` 1..7 shape-wise).

Element and attribute *values* are irrelevant to tree pattern matching and
are not generated.
"""

from __future__ import annotations

import random

from repro.errors import DatasetError
from repro.xmltree.document import Document, DocumentBuilder

REGIONS = ("africa", "asia", "australia", "europe", "namerica", "samerica")

#: Probability that a description holds a recursive parlist (vs flat text).
_PARLIST_PROBABILITY = 0.3
_MAX_PARLIST_DEPTH = 3


def generate(scale: float = 1.0, seed: int = 0) -> Document:
    """Generate an XMark-schema document.

    Args:
        scale: linear size factor (entity counts scale with it).
        seed: RNG seed; identical (scale, seed) pairs yield identical
            documents.

    Returns:
        The region-labelled document rooted at ``site``.
    """
    if scale <= 0:
        raise DatasetError(f"scale must be positive, got {scale}")
    rng = random.Random(seed)
    gen = _XMarkGenerator(rng, scale)
    return gen.run()


class _XMarkGenerator:
    def __init__(self, rng: random.Random, scale: float):
        self.rng = rng
        self.builder = DocumentBuilder(name=f"xmark-{scale}")
        self.items_per_region = max(1, round(25 * scale))
        self.categories = max(1, round(25 * scale))
        self.persons = max(2, round(80 * scale))
        self.open_auctions = max(1, round(60 * scale))
        self.closed_auctions = max(1, round(40 * scale))

    def run(self) -> Document:
        b = self.builder
        with b.element("site"):
            with b.element("regions"):
                for region in REGIONS:
                    with b.element(region):
                        for _ in range(self.items_per_region):
                            self._item()
            with b.element("categories"):
                for _ in range(self.categories):
                    with b.element("category"):
                        b.leaf("name")
                        self._description()
            with b.element("catgraph"):
                for _ in range(self.categories):
                    b.leaf("edge")
            with b.element("people"):
                for _ in range(self.persons):
                    self._person()
            with b.element("open_auctions"):
                for _ in range(self.open_auctions):
                    self._open_auction()
            with b.element("closed_auctions"):
                for _ in range(self.closed_auctions):
                    self._closed_auction()
        return b.build()

    # -- entities ------------------------------------------------------------

    def _item(self) -> None:
        b, rng = self.builder, self.rng
        with b.element("item"):
            b.leaf("location")
            b.leaf("quantity")
            b.leaf("name")
            b.leaf("payment")
            self._description()
            b.leaf("shipping")
            for _ in range(rng.randint(1, 4)):
                b.leaf("incategory")
            if rng.random() < 0.8:
                with b.element("mailbox"):
                    for _ in range(rng.randint(0, 3)):
                        with b.element("mail"):
                            b.leaf("from")
                            b.leaf("to")
                            b.leaf("date")
                            self._text()

    def _description(self) -> None:
        b, rng = self.builder, self.rng
        with b.element("description"):
            if rng.random() < _PARLIST_PROBABILITY:
                self._parlist(depth=1)
            else:
                self._text()

    def _parlist(self, depth: int) -> None:
        b, rng = self.builder, self.rng
        with b.element("parlist"):
            for _ in range(rng.randint(1, 3)):
                with b.element("listitem"):
                    if depth < _MAX_PARLIST_DEPTH and rng.random() < 0.35:
                        self._parlist(depth + 1)
                    else:
                        self._text()

    def _text(self) -> None:
        b, rng = self.builder, self.rng
        with b.element("text"):
            # Keyword-heavy markup: real XMark text is dense with keyword
            # elements, which is what makes //item//text//keyword tuples
            # redundant (a keyword joins every (item, text) ancestor pair).
            for _ in range(rng.randint(2, 6)):
                if rng.random() < 0.65:
                    b.leaf("keyword")
                else:
                    b.leaf(rng.choice(("bold", "emph")))

    def _person(self) -> None:
        b, rng = self.builder, self.rng
        with b.element("person"):
            b.leaf("name")
            b.leaf("emailaddress")
            if rng.random() < 0.5:
                b.leaf("phone")
            if rng.random() < 0.6:
                with b.element("address"):
                    b.leaf("street")
                    b.leaf("city")
                    b.leaf("country")
                    b.leaf("zipcode")
            if rng.random() < 0.3:
                b.leaf("homepage")
            if rng.random() < 0.5:
                b.leaf("creditcard")
            if rng.random() < 0.75:
                with b.element("profile"):
                    for _ in range(rng.randint(0, 4)):
                        b.leaf("interest")
                    if rng.random() < 0.45:
                        b.leaf("education")
                    if rng.random() < 0.8:
                        b.leaf("gender")
                    b.leaf("business")
                    if rng.random() < 0.7:
                        b.leaf("age")
            if rng.random() < 0.4:
                with b.element("watches"):
                    for _ in range(rng.randint(0, 3)):
                        b.leaf("watch")

    def _open_auction(self) -> None:
        b, rng = self.builder, self.rng
        with b.element("open_auction"):
            b.leaf("initial")
            if rng.random() < 0.55:
                b.leaf("reserve")
            for _ in range(rng.randint(0, 5)):
                with b.element("bidder"):
                    b.leaf("date")
                    b.leaf("time")
                    b.leaf("personref")
                    b.leaf("increase")
            b.leaf("current")
            if rng.random() < 0.4:
                b.leaf("privacy")
            b.leaf("itemref")
            b.leaf("seller")
            if rng.random() < 0.75:
                self._annotation()
            b.leaf("quantity")
            b.leaf("type")
            with b.element("interval"):
                b.leaf("start")
                b.leaf("end")

    def _closed_auction(self) -> None:
        b, rng = self.builder, self.rng
        with b.element("closed_auction"):
            b.leaf("seller")
            b.leaf("buyer")
            b.leaf("itemref")
            b.leaf("price")
            b.leaf("date")
            b.leaf("quantity")
            b.leaf("type")
            if rng.random() < 0.7:
                self._annotation()

    def _annotation(self) -> None:
        b = self.builder
        with b.element("annotation"):
            b.leaf("author")
            self._description()
            b.leaf("happiness")
