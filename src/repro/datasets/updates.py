"""Seeded random update sequences for maintenance testing.

Lives under ``repro.datasets`` (the only package allowed to use
``random``, per RL103) so the property tests and the maintenance
benchmark share one deterministic delta workload generator.

A sequence is generated against an evolving document: each delta is
drawn against the document produced by the previous ones, so node
addresses (pre-delta start labels) are always valid when the sequence
is replayed in order through
:func:`repro.maintenance.apply.apply_deltas` or committed through
:func:`repro.maintenance.engine.apply_updates`.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.errors import DatasetError
from repro.maintenance.apply import apply_delta
from repro.maintenance.deltas import (
    Delta,
    DeleteSubtree,
    InsertSubtree,
    RenameTag,
)
from repro.xmltree.document import Document

#: Relative odds of each delta kind in a generated sequence.  Inserts
#: dominate slightly so documents tend to grow, keeping later deletes
#: well-supplied with victims.
_KIND_WEIGHTS = (("insert", 3), ("delete", 2), ("rename", 2))


def random_update_sequence(
    document: Document,
    count: int = 5,
    seed: int = 0,
    tag_pool: Sequence[str] | None = None,
    max_subtree: int = 5,
    avoid_tags: Sequence[str] = (),
) -> tuple[list[Delta], Document]:
    """Generate ``count`` valid deltas against (an evolving) ``document``.

    Args:
        document: the starting document (not modified).
        count: number of deltas to generate.
        seed: RNG seed — same inputs, same sequence.
        tag_pool: element types used for inserted/renamed nodes; defaults
            to the document's own vocabulary, which maximizes interaction
            with materialized views (the interesting case).  Alien tags
            can be mixed in to exercise the pure-shift repair path.
        max_subtree: largest inserted subtree, in nodes.
        avoid_tags: element types the edits must stay structurally
            disjoint from — no insert/rename introduces them, no rename
            removes them, and no delete victim's subtree contains them.
            Pass a catalog's view vocabulary to generate the workload
            every view absorbs as a pure label SHIFT (the maintenance
            benchmark); the empty default leaves victims unconstrained.

    Returns:
        ``(deltas, final_document)`` — the final document equals
        ``apply_deltas(document, deltas)``'s result and is returned so
        callers can assert against it without re-applying.
    """
    if count < 0:
        raise DatasetError(f"delta count must be >= 0, got {count}")
    if max_subtree < 1:
        raise DatasetError(f"max_subtree must be >= 1, got {max_subtree}")
    rng = random.Random(seed)
    avoid = frozenset(avoid_tags)
    pool = list(tag_pool) if tag_pool is not None else sorted(
        {node.tag for node in document.nodes} - avoid
    )
    if avoid.intersection(pool):
        raise DatasetError(
            f"tag pool overlaps avoid_tags: {sorted(avoid.intersection(pool))}"
        )
    if not pool:
        raise DatasetError("empty tag pool")
    deltas: list[Delta] = []
    for __ in range(count):
        kinds = [kind for kind, weight in _KIND_WEIGHTS for _ in range(weight)]
        kind = rng.choice(kinds)
        if kind == "delete" and len(document.nodes) <= 1:
            kind = "insert"  # only the root left: nothing deletable
        if kind == "insert":
            delta: Delta = _random_insert(rng, document, pool, max_subtree)
        elif kind == "delete":
            delta = _random_delete(rng, document, avoid)
            if delta is None:  # every subtree holds an avoided tag
                delta = _random_insert(rng, document, pool, max_subtree)
        else:
            delta = _random_rename(rng, document, pool, avoid)
            if delta is None:  # every node carries an avoided tag
                delta = _random_insert(rng, document, pool, max_subtree)
        applied = apply_delta(document, delta)
        document = applied.document
        deltas.append(delta)
    return deltas, document


def _random_insert(
    rng: random.Random,
    document: Document,
    pool: Sequence[str],
    max_subtree: int,
) -> InsertSubtree:
    parent = rng.choice(document.nodes)
    position = rng.randrange(len(document.children(parent)) + 1)
    size = rng.randrange(1, max_subtree + 1)
    rows: list[tuple[str, int]] = [(rng.choice(pool), 0)]
    depth = 0
    for __ in range(size - 1):
        # Next row may sit anywhere from just under the root to one level
        # below the previous row (deeper would skip a level); the random
        # walk yields chains, bushes and mixes alike.
        depth = rng.randrange(1, depth + 2)
        rows.append((rng.choice(pool), depth))
    return InsertSubtree(
        parent_start=parent.start, position=position, rows=tuple(rows)
    )


def _random_delete(
    rng: random.Random, document: Document, avoid: frozenset[str] = frozenset()
) -> DeleteSubtree | None:
    candidates = document.nodes[1:]  # never the root
    for __ in range(len(candidates)):
        victim = rng.choice(candidates)
        if avoid and (
            victim.tag in avoid
            or any(n.tag in avoid for n in document.descendants(victim))
        ):
            continue  # rejection-sample an avoid_tags-disjoint subtree
        return DeleteSubtree(root_start=victim.start)
    return None


def _random_rename(
    rng: random.Random,
    document: Document,
    pool: Sequence[str],
    avoid: frozenset[str] = frozenset(),
) -> RenameTag | None:
    for __ in range(len(document.nodes)):
        node = rng.choice(document.nodes)
        if node.tag in avoid:
            continue  # renaming it away would touch an avoided type
        return RenameTag(node_start=node.start, new_tag=rng.choice(pool))
    return None
