"""Synthetic NASA ADC astronomical-dataset generator.

Stands in for the 23 MB NASA dataset from the UW XML data repository (see
DESIGN.md §1).  The generator emits the schema fragment covered by the
paper's queries N1-N8 and the Table II / Table III views::

    datasets
      dataset*
        title
        tableHead            tableLink* -> title ; field* -> definition ->
                             (para*, footnote -> para?)
        history              revision* -> (creator -> lastname, date?, para*)
        reference*           journal -> (title?, author -> (lastname,
                             suffix?), bibcode?, date -> year)
        descriptions         observatory?, description* -> para*
        identifier

The real NASA document's element distribution is highly skewed — the paper
attributes ViewJoin's larger gains on NASA to that skew (Section VI-A).
The generator reproduces it with a two-class population: a minority of
"rich" datasets carry most of the fields/definitions/paras while the
majority are sparse, so solution nodes cluster and pointer-skipping pays.
"""

from __future__ import annotations

import random

from repro.errors import DatasetError
from repro.xmltree.document import Document, DocumentBuilder

#: Fraction of datasets that are content-rich (the skew head).
_RICH_FRACTION = 0.2


def generate(scale: float = 1.0, seed: int = 0) -> Document:
    """Generate a NASA-schema document.

    Args:
        scale: linear size factor; ``scale=1.0`` yields roughly 9k elements.
        seed: RNG seed for reproducibility.

    Returns:
        The region-labelled document rooted at ``datasets``.
    """
    if scale <= 0:
        raise DatasetError(f"scale must be positive, got {scale}")
    rng = random.Random(seed)
    builder = DocumentBuilder(name=f"nasa-{scale}")
    num_datasets = max(2, round(60 * scale))
    with builder.element("datasets"):
        for i in range(num_datasets):
            rich = rng.random() < _RICH_FRACTION
            _dataset(builder, rng, rich)
    return builder.build()


def _dataset(b: DocumentBuilder, rng: random.Random, rich: bool) -> None:
    with b.element("dataset"):
        b.leaf("title")
        _table_head(b, rng, rich)
        if rng.random() < (0.9 if rich else 0.4):
            _history(b, rng, rich)
        for _ in range(rng.randint(1, 3) if rich else rng.randint(0, 1)):
            _reference(b, rng)
        if rng.random() < 0.8:
            _descriptions(b, rng, rich)
        b.leaf("identifier")


def _table_head(b: DocumentBuilder, rng: random.Random, rich: bool) -> None:
    with b.element("tableHead"):
        for _ in range(rng.randint(1, 2) if rich else rng.randint(0, 1)):
            with b.element("tableLink"):
                b.leaf("title")
        fields = rng.randint(6, 14) if rich else rng.randint(0, 3)
        for _ in range(fields):
            with b.element("field"):
                if rng.random() < 0.85:
                    with b.element("definition"):
                        for _ in range(rng.randint(0, 3)):
                            b.leaf("para")
                        if rng.random() < 0.45:
                            with b.element("footnote"):
                                if rng.random() < 0.6:
                                    b.leaf("para")


def _history(b: DocumentBuilder, rng: random.Random, rich: bool) -> None:
    with b.element("history"):
        revisions = rng.randint(2, 5) if rich else rng.randint(0, 2)
        for _ in range(revisions):
            with b.element("revision"):
                with b.element("creator"):
                    b.leaf("lastname")
                if rng.random() < 0.6:
                    b.leaf("date")
                for _ in range(rng.randint(0, 2)):
                    b.leaf("para")


def _reference(b: DocumentBuilder, rng: random.Random) -> None:
    with b.element("reference"):
        if rng.random() < 0.85:
            with b.element("journal"):
                if rng.random() < 0.7:
                    b.leaf("title")
                with b.element("author"):
                    b.leaf("lastname")
                    if rng.random() < 0.3:
                        b.leaf("suffix")
                if rng.random() < 0.6:
                    b.leaf("bibcode")
                with b.element("date"):
                    b.leaf("year")


def _descriptions(b: DocumentBuilder, rng: random.Random, rich: bool) -> None:
    with b.element("descriptions"):
        if rng.random() < 0.5:
            b.leaf("observatory")
        for _ in range(rng.randint(1, 3) if rich else 1):
            with b.element("description"):
                for _ in range(rng.randint(1, 4) if rich else rng.randint(0, 1)):
                    b.leaf("para")
