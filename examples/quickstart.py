"""Quickstart: materialize views and evaluate a tree pattern query.

Run with::

    python examples/quickstart.py
"""

from repro import Scheme, ViewCatalog, evaluate, parse_pattern
from repro.datasets import xmark


def main() -> None:
    # 1. A data tree: a synthetic XMark auction site (~6k elements/scale).
    document = xmark.generate(scale=1.0, seed=7)
    print(f"document: {document.summary()}")

    # 2. A tree pattern query in the {/, //, []} XPath fragment.
    query = parse_pattern(
        "//open_auctions//open_auction//bidder//increase"
    )

    # 3. A covering view set: tag-disjoint subpatterns of the query whose
    #    materialized joins the engine will reuse.
    views = [
        parse_pattern("//open_auctions//bidder"),
        parse_pattern("//open_auction//increase"),
    ]

    # 4. Materialize and evaluate.  The catalog caches each (view, scheme)
    #    materialization; evaluate() accepts any Table I combination.
    with ViewCatalog(document) as catalog:
        result = evaluate(
            query, catalog, views,
            algorithm="VJ",          # the paper's ViewJoin
            scheme=Scheme.LINKED_PARTIAL,  # LE_p storage
        )
        print(f"matches: {result.match_count}")
        print(f"work counters: {result.counters.as_dict()}")
        print(f"I/O: {result.io.as_dict()}")

        # First three matches; components follow the query's preorder tags.
        for match in result.matches[:3]:
            bindings = ", ".join(
                f"{tag}@{entry.start}"
                for tag, entry in zip(query.tags(), match)
            )
            print(f"  {bindings}")

        # Compare against the TwigStack baseline on the same views.
        baseline = evaluate(query, catalog, views, "TS", "E")
        print(
            f"TwigStack scans {baseline.counters.elements_scanned} entries;"
            f" ViewJoin scanned {result.counters.elements_scanned}"
            f" and skipped {result.counters.entries_skipped} via pointers."
        )


if __name__ == "__main__":
    main()
