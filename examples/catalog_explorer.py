"""Scientific catalog exploration: the NASA workload and the interleaving
study.

A skewed astronomical-catalog document (the paper's NASA substitute) is
queried through materialized views.  The example then reproduces the
Section VI-B experiment interactively: the *same* query evaluated with
four different covering view sets whose interleaving with the query ranges
from 6 inter-view edges down to 2 — fewer interleavings mean more
precomputed join reuse and less ViewJoin work.

Run with::

    python examples/catalog_explorer.py [scale]
"""

import sys

from repro.algorithms.engine import evaluate
from repro.algorithms.segmentation import segment_query
from repro.bench.harness import run_query_matrix
from repro.bench.report import format_records, format_table
from repro.datasets import nasa as nasa_data
from repro.storage.catalog import ViewCatalog
from repro.workloads import nasa


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 2.0
    document = nasa_data.generate(scale=scale, seed=42)
    print(f"NASA catalog at scale {scale}: {document.summary()}\n")

    print("== the eight benchmark queries (N1-N8) ==")
    records = run_query_matrix(document, nasa.ALL_QUERIES, dataset="nasa")
    print(format_records(records, metric="ms"))
    print()

    print("== impact of interleaving conditions (Fig. 6(b)) ==")
    print(f"query N_t = {nasa.QUERY_NT.to_xpath()}\n")
    rows = []
    with ViewCatalog(document) as catalog:
        for set_name, views in nasa.TWIG_VIEW_SETS.items():
            seg = segment_query(nasa.QUERY_NT, views)
            result = evaluate(
                nasa.QUERY_NT, catalog, views, "VJ", "LEp",
                emit_matches=False,
            )
            rows.append(
                [
                    set_name,
                    seg.inter_view_edge_count(),
                    len(seg.segments),
                    "; ".join(v.to_xpath() for v in views),
                    result.counters.work,
                    result.match_count,
                ]
            )
    print(
        format_table(
            ["set", "#inter-view edges", "#segments", "views",
             "VJ+LEp work", "matches"],
            rows,
        )
    )
    print(
        "\nExpected shape: identical matches for every set, and less"
        " ViewJoin work as the inter-view edge count drops (TV4 reuses the"
        " largest precomputed joins)."
    )


if __name__ == "__main__":
    main()
