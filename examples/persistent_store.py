"""Persistent view store: materialize once, answer queries forever.

The workflow a downstream user actually wants from a view-based TPQ
engine: build a store of materialized views on disk, reopen it in a later
process, and let the planner decide which registered views answer each
incoming query (falling back to raw element streams for uncovered nodes).

Run with::

    python examples/persistent_store.py
"""

import tempfile

from repro import Planner, ViewCatalog, load_catalog, save_catalog
from repro.datasets import xmark


def build_store(directory: str) -> None:
    document = xmark.generate(scale=1.0, seed=3)
    print(f"building store from {document.summary()}")
    with ViewCatalog(document) as catalog:
        planner = Planner(catalog, scheme="LEp")
        for pattern in [
            "//open_auctions//open_auction",
            "//bidder//increase",
            "//people//person//profile",
            "//closed_auctions//closed_auction//price",
        ]:
            view = planner.register(pattern)
            info = catalog.add(view, "LEp")
            print(f"  registered {pattern}: {info.size_bytes} bytes")
        save_catalog(catalog, directory)
    print(f"store saved to {directory}\n")


def query_store(directory: str) -> None:
    catalog = load_catalog(directory)
    try:
        planner = Planner(catalog, scheme="LEp")
        adopted = planner.adopt_catalog_views()
        print(f"reopened store with {adopted} views\n")
        for text in [
            # fully covered by registered views
            "//open_auctions//open_auction//bidder//increase",
            # partially covered: 'reserve' falls back to a base view
            "//open_auctions//open_auction//reserve",
            # twig mixing two registered views and one base view
            "//people//person//profile//age",
        ]:
            plan, result = planner.answer(text, emit_matches=False)
            print(plan.describe())
            print(
                f"  -> {result.match_count} matches,"
                f" {result.counters.work} work,"
                f" {result.io.logical_reads} page reads\n"
            )
    finally:
        catalog.close()


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="viewjoin-store-") as directory:
        build_store(directory)
        query_store(directory)


if __name__ == "__main__":
    main()
