"""View advisor: cost-based view selection (paper Section V, Table II).

Given a query and a pool of candidate materialized views, the advisor
costs each candidate with ``c(v, Q) = (1-lambda)*sum|L_q| +
lambda*sum|L_q|*e_q`` and greedily assembles a covering set by benefit.
The example reproduces the paper's Table II scenario and then contrasts
the cost-based pick with a naive size-only pick by actually evaluating
the query with both.

Run with::

    python examples/view_advisor.py
"""

from repro.algorithms.engine import evaluate
from repro.bench.report import format_table
from repro.datasets import nasa as nasa_data
from repro.selection.greedy import select_views
from repro.storage.catalog import ViewCatalog
from repro.workloads import nasa


def main() -> None:
    document = nasa_data.generate(scale=3.0, seed=42)
    query = nasa.SELECTION_QUERY
    candidates = nasa.SELECTION_CANDIDATES
    print(f"query: {query.to_xpath()}")
    print(f"candidates: {[v.name for v in candidates]}\n")

    selection = select_views(
        document, candidates, query, lam=1.0, require_complete=True
    )
    rows = [
        [
            name,
            cost.view.to_xpath(),
            round(cost.io_term),
            round(cost.cpu_term),
            round(cost.total),
        ]
        for name, cost in sorted(selection.costs.items())
    ]
    print(format_table(["view", "pattern", "|L| total", "cpu", "c(v,Q)"],
                       rows))
    print(f"\ngreedy trace: {selection.trace}")
    print(f"selected: {[v.name for v in selection.selected]}"
          f" (paper Table II: {list(nasa.EXPECTED_SELECTION)})\n")

    by_name = {v.name: v for v in candidates}
    size_only = [by_name[n] for n in nasa.SIZE_ONLY_SELECTION]
    with ViewCatalog(document) as catalog:
        fast = evaluate(query, catalog, selection.selected, "VJ", "LE")
        slow = evaluate(query, catalog, size_only, "VJ", "LE")
    assert fast.match_keys() == slow.match_keys()
    gap = slow.counters.work / max(fast.counters.work, 1)
    print(
        f"cost-based set work: {fast.counters.work};"
        f" size-only set work: {slow.counters.work};"
        f" gap {gap:.2f}x (paper reports 1.93x)"
    )

    # Going further: what if no candidate pool is given at all?  The
    # advisor enumerates the query's connected subpatterns and recommends
    # what to materialize, using only one pass of document statistics.
    from repro.selection.advisor import recommend_views

    print("\n== advisor: recommending views from scratch ==")
    advice = recommend_views(document, query, max_view_size=4)
    for rec in advice.candidates[:5]:
        print(
            f"  {rec.view.to_xpath():45s} est. cost {rec.estimated_cost:9.0f}"
            f"  saving {rec.saving:9.0f}"
        )
    print(f"recommended: {[v.to_xpath() for v in advice.recommended]}")
    if advice.uncovered:
        print(f"left to base views: {advice.uncovered}")


if __name__ == "__main__":
    main()
