"""Result caching: store a query's answer as a materialized view and
reuse it (paper Section IV-B, feature 2).

ViewJoin keeps its intermediate solutions in the same DAG structure the
linked-element scheme stores on disk, so a finished query is one
registration away from becoming a view.  A workload of related queries
then answers later, larger queries from earlier, smaller results.

Run with::

    python examples/result_caching.py
"""

from repro.algorithms.engine import evaluate
from repro.datasets import xmark
from repro.storage.catalog import ViewCatalog
from repro.tpq.parser import parse_pattern


def main() -> None:
    document = xmark.generate(scale=1.5, seed=11)
    print(f"document: {document.summary()}\n")

    base_query = parse_pattern("//open_auctions//open_auction//bidder")
    base_views = [
        parse_pattern("//open_auctions//open_auction"),
        parse_pattern("//bidder"),
    ]

    with ViewCatalog(document) as catalog:
        # 1. Answer the base query from primitive views.
        base = evaluate(base_query, catalog, base_views, "VJ", "LE")
        print(
            f"base query {base_query.to_xpath()}:"
            f" {base.match_count} matches,"
            f" {base.counters.elements_scanned} entries scanned"
        )

        # 2. Register its result as a view (any scheme works).
        catalog.add_result_view(base_query, base.matches, "LE")
        print("result registered as a materialized LE view\n")

        # 3. A follow-up query extends the base pattern; the cached result
        #    covers three of its four nodes, so only the increase list is
        #    new input.
        follow_up = parse_pattern(
            "//open_auctions//open_auction//bidder//increase"
        )
        cached = evaluate(
            follow_up, catalog,
            [base_query, parse_pattern("//increase")],
            "VJ", "LE",
        )
        fresh = evaluate(
            follow_up, catalog,
            base_views + [parse_pattern("//increase")],
            "VJ", "LE",
        )
        assert cached.match_keys() == fresh.match_keys()
        print(
            f"follow-up {follow_up.to_xpath()}: {cached.match_count} matches"
        )
        print(
            f"  from cached result: {cached.counters.work} work,"
            f" {cached.counters.elements_scanned} entries scanned"
        )
        print(
            f"  from primitive views: {fresh.counters.work} work,"
            f" {fresh.counters.elements_scanned} entries scanned"
        )
        gain = fresh.counters.work / max(cached.counters.work, 1)
        print(f"  reuse gain: {gain:.2f}x less work")


if __name__ == "__main__":
    main()
