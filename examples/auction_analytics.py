"""Auction-site analytics: the XMark workload end to end.

The scenario the paper's introduction motivates: an auction site keeps
materialized views for its hot query patterns and answers analytical tree
pattern queries from them instead of from the raw data.  This example

1. generates an XMark document,
2. runs the paper's 14 derived benchmark queries through every applicable
   engine combination (Table I),
3. prints a Fig. 5-style comparison and the per-query winner.

Run with::

    python examples/auction_analytics.py [scale]
"""

import sys

from repro.bench.harness import default_combos, run_query_matrix
from repro.bench.report import format_records
from repro.datasets import xmark as xmark_data
from repro.workloads import xmark


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 1.0
    document = xmark_data.generate(scale=scale, seed=42)
    print(f"XMark document at scale {scale}: {document.summary()}\n")

    for label, specs in [
        ("path queries (all seven combos)", xmark.PATH_QUERIES),
        ("twig queries (no InterJoin)", xmark.TWIG_QUERIES),
    ]:
        print(f"== {label} ==")
        records = run_query_matrix(document, specs, dataset="xmark")
        print(format_records(records, metric="ms"))
        print()
        print("work counters (machine-independent):")
        print(format_records(records, metric="work"))
        print()

        by_query: dict[str, list] = {}
        for record in records:
            by_query.setdefault(record.query, []).append(record)
        for spec in specs:
            rows = by_query[spec.name]
            winner = min(rows, key=lambda r: r.counters.work)
            note = f"  ({spec.note})" if spec.note else ""
            print(f"{spec.name}: least work = {winner.combo}{note}")
        print()

    print(
        "Expected shape (paper Fig. 5): ViewJoin variants do the least"
        " work on nearly every query; IJ vs TS flips with tuple-view"
        " redundancy."
    )


if __name__ == "__main__":
    main()
