"""Legacy setup shim: the offline environment has no `wheel` package, so
`pip install -e .` must take the setup.py develop path."""

from setuptools import setup

setup()
