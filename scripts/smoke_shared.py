"""CI smoke: the shared-scan batch executor every run.

Builds a tiny catalog, answers a duplicate-heavy batch through the
shared executor and the independent per-query path — sequentially and
at ``workers=2`` — and asserts the byte-identity contract: match keys,
per-query work counters, the integer I/O statistics and the merged
totals must all be equal, while the shared path dispatches strictly
fewer jobs than there are queries.  Also exercises the ``shared=False``
escape hatch the ``REPRO_SHARED`` env knob maps to.
"""

from __future__ import annotations

import sys


def outcome_key(outcome):
    return (
        outcome.query,
        outcome.match_keys,
        outcome.counters,
        (
            outcome.io.logical_reads, outcome.io.physical_reads,
            outcome.io.pages_written,
        ),
        outcome.cached,
        outcome.refuted,
    )


def main() -> int:
    from repro.datasets import random_trees
    from repro.service import QueryService
    from repro.storage.catalog import ViewCatalog
    from repro.workloads import repeated_batch

    doc = random_trees.generate(size=250, max_depth=8, seed=3)
    workload = repeated_batch(10, overlap=0.6, seed=4)
    assert len(workload.distinct()) < len(workload.queries)

    def run(shared, workers):
        with ViewCatalog(doc) as catalog:
            with QueryService(catalog) as service:
                for view in workload.views:
                    service.register(view)
                if workers:
                    batch = service.evaluate_parallel(
                        workload.queries, workers=workers, shared=shared
                    )
                else:
                    batch = service.evaluate_batch(
                        workload.queries, shared=shared
                    )
                jobs = service.shared_metrics()["jobs_run"]
        return batch, jobs

    for workers in (0, 2):
        fast, jobs = run(True, workers)
        slow, none_run = run(False, workers)
        assert none_run == 0, "independent path must not touch shared stats"
        assert jobs == len(workload.distinct()) < len(workload.queries)
        for a, b in zip(fast.outcomes, slow.outcomes):
            assert outcome_key(a) == outcome_key(b), a.query
        assert fast.counters == slow.counters
        assert (
            fast.io.logical_reads, fast.io.physical_reads,
            fast.io.pages_written,
        ) == (
            slow.io.logical_reads, slow.io.physical_reads,
            slow.io.pages_written,
        )
    print(
        "shared smoke ok:"
        f" {len(workload.queries)} queries"
        f" ({len(workload.distinct())} distinct, {jobs} jobs),"
        " shared == independent byte-identical at workers=0 and 2"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
