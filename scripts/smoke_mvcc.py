"""CI smoke: MVCC snapshot reads stay exact under a sustained update storm.

Builds a deterministic store, pins a generation, suspends a paginated
quantum chain, then interleaves ≥200 commit/read sequences (a seeded
stall-only :class:`~repro.resilience.faults.FaultPlan` installed the
whole time — benign latency, never data loss, so the acceptance bar is
**zero** failed and **zero** degraded reads, not "correct or typed"):

* every fresh read must equal the naive ground truth of the *current*
  document;
* every ``as_of`` read must equal the ground truth captured when the
  generation was pinned;
* the suspended chain, resumed across the whole storm, must drain
  byte-identical (pages + counters) to its pre-storm one-shot run;
* generation GC under a zero budget must keep the archive at exactly
  the pinned generation, never reaping it.

A hard watchdog fails the run if it wedges; the CI wrapper additionally
bounds the wall clock with ``timeout``.
"""

from __future__ import annotations

import faulthandler
import random
import sys
import tempfile
from pathlib import Path

FAULTS = "seed=97;worker=stall:0.2:0.002"
QUERIES = ["//a//b//c", "//a[//b]//c", "//a//b"]
QUERY = "//a[//b]//c"
ROUNDS = 90
WATCHDOG_S = 240.0


def main() -> int:
    faulthandler.enable()
    # Dump-and-exit if the storm wedges: a hang is a failure, not a wait.
    faulthandler.dump_traceback_later(WATCHDOG_S, exit=True)

    from repro.algorithms.preempt import QuantumBudget
    from repro.datasets import random_trees
    from repro.maintenance import DeleteSubtree, InsertSubtree
    from repro.resilience import FaultPlan, faults
    from repro.service import QueryService
    from repro.storage.catalog import ViewCatalog
    from repro.storage.generations import list_generations
    from repro.storage.persistence import save_catalog
    from repro.tpq.naive import find_embeddings
    from repro.tpq.parser import parse_pattern

    def truth(doc, query):
        return sorted(
            tuple(n.start for n in m)
            for m in find_embeddings(doc, parse_pattern(query))
        )

    def one_delta(service, rng):
        doc = service.catalog.document
        if rng.random() < 0.5:
            victims = [
                n for n in doc.nodes
                if n.tag in ("b", "c") and n.end == n.start + 1
            ]
            if victims:
                return DeleteSubtree(root_start=rng.choice(victims).start)
        parent = rng.choice([n for n in doc.nodes if n.tag == "a"])
        return InsertSubtree(
            parent_start=parent.start, position=0,
            rows=(("b", 0), ("c", 1)),
        )

    doc = random_trees.generate(size=260, max_depth=9, seed=41)
    rng = random.Random(41)

    with tempfile.TemporaryDirectory(prefix="repro-mvcc-") as tmp:
        store = Path(tmp) / "store"
        with ViewCatalog(doc) as catalog:
            catalog.add(parse_pattern("//a//b", name="w1"), "LEp")
            catalog.add(parse_pattern("//c", name="w2"), "LEp")
            save_catalog(catalog, store)

        with QueryService.open(str(store)) as service:
            service.warmup(QUERIES)
            one = service.evaluate(QUERY)
            suspended = service.evaluate_quantum(
                QUERY, budget=QuantumBudget(max_steps=1)
            )
            if suspended.done:
                print("FAIL: quantum chain finished before the storm")
                return 1
            pages = list(suspended.page)
            pin = service.pin_generation()
            at_pin = {q: sorted(service.evaluate(q).match_keys)
                      for q in QUERIES}
            faults.install(FaultPlan.parse(FAULTS))
            commits = reads = 0
            try:
                for round_no in range(ROUNDS):
                    commits += service.apply_updates(
                        [one_delta(service, rng)]
                    ).deltas
                    query = QUERIES[round_no % len(QUERIES)]
                    fresh = service.evaluate(query)
                    if fresh.error or fresh.degraded:
                        print(f"FAIL: fresh read not clean at round"
                              f" {round_no}: error={fresh.error!r}"
                              f" degraded={fresh.degraded}")
                        return 1
                    if sorted(fresh.match_keys) != truth(
                        service.catalog.document, query
                    ):
                        print(f"FAIL: fresh read wrong at round {round_no}")
                        return 1
                    snap = service.evaluate(query, as_of=pin)
                    if snap.error or snap.degraded:
                        print(f"FAIL: pinned read not clean at round"
                              f" {round_no}")
                        return 1
                    if sorted(snap.match_keys) != at_pin[query]:
                        print(f"FAIL: pinned read drifted at round"
                              f" {round_no}")
                        return 1
                    reads += 2
                    if round_no % 15 == 0:
                        batch = service.evaluate_parallel(
                            QUERIES, workers=2, deadline_s=60.0
                        )
                        for outcome in batch.outcomes:
                            if outcome.error or outcome.degraded:
                                print("FAIL: parallel read not clean at"
                                      f" round {round_no}:"
                                      f" {outcome.query}")
                                return 1
                        reads += len(batch.outcomes)
                    if not suspended.done:
                        # One more page of the suspended chain, pinned
                        # to its pre-storm generation, every round.
                        suspended = service.resume_quantum(suspended.token)
                        pages.extend(suspended.page)
                        reads += 1
            finally:
                faults.uninstall()

            while not suspended.done:
                suspended = service.resume_quantum(suspended.token)
                pages.extend(suspended.page)
            if pages != list(one.match_keys):
                print("FAIL: resumed chain pages diverged from one-shot")
                return 1
            if suspended.counters.as_dict() != one.counters.as_dict():
                print("FAIL: resumed chain counters diverged")
                return 1

            report = service.gc_generations(budget_bytes=0)
            if pin in report.reaped:
                print("FAIL: GC reaped a pinned generation")
                return 1
            surviving = list_generations(store)
            if surviving != [pin]:
                print(f"FAIL: archive not reduced to the pin: {surviving}")
                return 1
            service.unpin_generation(pin)

            metrics = service.resilience_metrics()
            if metrics["failed_queries"] or metrics["degraded_queries"]:
                print(f"FAIL: storm saw {metrics['failed_queries']} failed"
                      f" / {metrics['degraded_queries']} degraded reads")
                return 1

        print(f"fault plan    : {FAULTS}")
        print(f"storm         : {commits} commits / {reads} reads"
              f" ({commits + reads} interleaved sequences)")
        print(f"generations   : {metrics['generations_reaped']} reaped,"
              f" pinned generation {pin} survived every sweep")
        print(f"chain         : {suspended.quanta} quanta,"
              f" byte-identical across the storm")
        if commits + reads < 200:
            print("FAIL: storm too small to count as acceptance evidence")
            return 1
        print("PASS: zero failed, zero degraded reads across the storm")
    faulthandler.cancel_dump_traceback_later()
    return 0


if __name__ == "__main__":
    sys.exit(main())
