#!/usr/bin/env python
"""CI gate for the whole-program lint: cold/warm timing + stats line.

Runs the full lint twice against the real package and committed
baseline — once cold (analysis cache removed first) and once warm
(cache populated by the cold run) — then prints one stats line per run:

    repro-lint cold: rules=15 files=90 graph_nodes=916 graph_edges=1610
        findings=0 warnings=0 wall=2.84s
    repro-lint warm: ... summary_hits=90 closure_hits=612 wall=1.42s

and enforces the performance budget (cold < 10 s, warm < 2 s —
scalable via ``REPRO_LINT_BUDGET_SCALE`` for slow CI machines).  Exit
status is non-zero on any non-baselined finding or budget violation.

Usage::

    python scripts/lint_stats.py [--sarif lint.sarif] [--json report.json]
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.analysis.reporters import render_json, render_sarif  # noqa: E402
from repro.analysis.runner import (  # noqa: E402
    default_cache_path,
    lint_package,
)

COLD_BUDGET_SECONDS = 10.0
WARM_BUDGET_SECONDS = 2.0


def _stats_line(label: str, report) -> str:
    stats = report.stats
    parts = [
        f"rules={stats.module_rules + stats.program_rules}",
        f"files={stats.files}",
        f"graph_nodes={stats.graph_nodes}",
        f"graph_edges={stats.graph_edges}",
        f"findings={len(report.new_findings)}",
        f"warnings={len(report.warnings)}",
    ]
    for key in ("summary_hits", "closure_hits"):
        if stats.cache.get(key):
            parts.append(f"{key}={stats.cache[key]}")
    parts.append(f"wall={stats.duration_seconds:.2f}s")
    return f"repro-lint {label}: " + " ".join(parts)


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sarif", help="write the warm run as SARIF here")
    parser.add_argument("--json", help="write the warm run as JSON here")
    args = parser.parse_args(argv[1:])

    scale = float(os.environ.get("REPRO_LINT_BUDGET_SCALE", "1"))
    cache_path = default_cache_path()
    try:
        cache_path.unlink()
    except OSError:
        pass

    cold = lint_package(cache_path=cache_path)
    print(_stats_line("cold", cold))
    warm = lint_package(cache_path=cache_path)
    print(_stats_line("warm", warm))

    if args.sarif:
        with open(args.sarif, "w", encoding="utf-8") as handle:
            handle.write(render_sarif(warm))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(render_json(warm))

    failed = False
    for finding in warm.new_findings:
        print(f"  {finding.location()}: {finding.code}: {finding.message}")
        failed = True
    for warning in warm.warnings:
        print(f"  {warning.location()}: warning: {warning.code}:"
              f" {warning.message}")
    if cold.stats.duration_seconds > COLD_BUDGET_SECONDS * scale:
        print(f"repro-lint: cold run {cold.stats.duration_seconds:.2f}s"
              f" exceeds budget {COLD_BUDGET_SECONDS * scale:.1f}s")
        failed = True
    if warm.stats.duration_seconds > WARM_BUDGET_SECONDS * scale:
        print(f"repro-lint: warm run {warm.stats.duration_seconds:.2f}s"
              f" exceeds budget {WARM_BUDGET_SECONDS * scale:.1f}s")
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
