#!/usr/bin/env bash
# CI entry point: tier-1 tests plus a fast benchmark smoke pass.
#
# The smoke pass runs the substrate micro-benchmarks at a tiny dataset
# scale (REPRO_BENCH_SCALE shrinks the macro fixtures) with one warmup
# round — enough to catch substrate regressions and import/bench-harness
# breakage without the minutes-long full benchmark suite.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH=src

echo "== repro-lint (whole-program: RL1xx per-file + RL2xx call-graph) =="
# Cold run (cache removed) then warm run, with wall-time budgets
# enforced (<10s cold, <2s warm) and JSON + SARIF artifacts written.
# lint_stats exits non-zero on any non-baselined finding.
python scripts/lint_stats.py --sarif .repro-lint.sarif \
    --json .repro-lint-report.json
python scripts/lint_report.py .repro-lint-report.json

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== benchmark smoke (micro substrate) =="
REPRO_BENCH_SCALE=0.1 python -m pytest benchmarks/test_micro_substrate.py \
    -q --benchmark-warmup=off --benchmark-min-rounds=1 \
    --benchmark-disable-gc --benchmark-columns=median

echo "== benchmark smoke (columnar off) =="
REPRO_BENCH_SCALE=0.1 REPRO_COLUMNAR=0 python -m pytest \
    benchmarks/test_micro_substrate.py -q --benchmark-warmup=off \
    --benchmark-min-rounds=1 --benchmark-columns=median

echo "== service smoke (parallel sequential-equality, workers=2) =="
python scripts/smoke_parallel.py

echo "== maintenance smoke (canned WAL replay vs golden rebuild) =="
python scripts/smoke_maintenance.py

echo "== shared-batch smoke (CSE vs independent byte-equality) =="
timeout 120 python scripts/smoke_shared.py

echo "== advisor smoke (adoption cycle: identical answers, less work) =="
timeout 120 python scripts/smoke_advisor.py

echo "== serve smoke (1 ms quanta over HTTP == one-shot answer) =="
timeout 120 python scripts/smoke_serve.py

echo "== chaos smoke (fixed-seed fault plan, correct-or-typed) =="
# `timeout` is the outer wall-clock guard: a chaos regression that
# hangs (instead of returning typed outcomes) must fail CI, not wedge it.
timeout 300 python scripts/smoke_chaos.py

echo "== mvcc smoke (update storm: zero failed / degraded snapshot reads) =="
timeout 300 python scripts/smoke_mvcc.py
