#!/usr/bin/env python
"""Summarize a `repro.cli lint --json` report for CI logs.

Reads the JSON report from stdin (or a file argument) and prints
per-rule counts plus the findings themselves.  Exit status mirrors the
report: 0 when no new findings, 1 otherwise — so this can terminate a
pipeline on its own even without `pipefail`.

Usage::

    python -m repro.cli lint --json | python scripts/lint_report.py
    python scripts/lint_report.py report.json
"""

from __future__ import annotations

import json
import sys


def main(argv: list[str]) -> int:
    if len(argv) > 1:
        with open(argv[1], encoding="utf-8") as handle:
            payload = json.load(handle)
    else:
        payload = json.load(sys.stdin)

    counts = payload["counts"]
    names = {rule["code"]: rule["name"] for rule in payload.get("rules", [])}
    print(f"repro-lint: {payload['files_checked']} files,"
          f" {counts['new']} new / {counts['baselined']} baselined"
          f" / {counts['suppressed']} suppressed")
    for code in sorted(counts["per_rule"]):
        label = names.get(code, "")
        tally = counts["per_rule"][code]
        marker = "!!" if tally else "ok"
        print(f"  [{marker}] {code} {label:<22} {tally}")
    for finding in payload["findings"]:
        print(f"  {finding['path']}:{finding['line']}:{finding['col']}:"
              f" {finding['code']}: {finding['message']}")
    stale = payload.get("stale_baseline", [])
    if stale:
        print(f"  {len(stale)} stale baseline entr"
              f"{'y' if len(stale) == 1 else 'ies'} — remove them:")
        for entry in stale:
            print(f"    {entry['code']} {entry['path']}: {entry['message']}")
    return 0 if counts["new"] == 0 else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
