"""CI smoke: the fork/spawn path of ``evaluate_parallel`` every run.

Builds a tiny catalog, answers a small batch sequentially and with
``workers=2``, and asserts the service's determinism contract: match
keys, per-query work counters and the integer I/O statistics must be
byte-identical.  Fast enough (< a few seconds) to run on every CI pass.
"""

from __future__ import annotations

import sys


def main() -> int:
    from repro.datasets import random_trees
    from repro.service import QueryService
    from repro.storage.catalog import ViewCatalog

    doc = random_trees.generate(size=200, max_depth=8, seed=3)
    queries = ["//a//b//c", "//a[//b]//c", "//a//b", "//b//c"]
    with ViewCatalog(doc) as catalog:
        with QueryService(catalog) as service:
            service.register("//a//b")
            service.register("//c")
            sequential = service.evaluate_batch(queries)
            parallel = service.evaluate_parallel(queries, workers=2)
    for seq, par in zip(sequential.outcomes, parallel.outcomes):
        assert seq.match_keys == par.match_keys, seq.query
        assert seq.counters == par.counters, seq.query
        assert (
            seq.io.logical_reads, seq.io.physical_reads,
            seq.io.pages_written,
        ) == (
            par.io.logical_reads, par.io.physical_reads,
            par.io.pages_written,
        ), seq.query
    assert sequential.counters == parallel.counters
    assert sequential.io.logical_reads == parallel.io.logical_reads
    print(
        "parallel smoke ok:"
        f" {len(queries)} queries, {sequential.counters.matches} matches,"
        f" counters byte-identical at workers=2"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
