"""CI smoke: replay a canned update log against a golden rebuild.

Builds a deterministic store, appends a fixed WAL (insert, rename,
delete — one of each repair class), and replays it through
:func:`repro.maintenance.engine.recover_store` exactly the way a crashed
maintenance commit would be finished on reattach.  The recovered store
must be byte-identical (page payloads, entry counts, pointer stats) to a
store materialized fresh from the final document, and its query answers
must equal the naive ground truth.  Fast (< a few seconds), runs on
every CI pass.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path


def fingerprint(catalog):
    rows = {}
    for (name, scheme), info in catalog.entries():
        payload = []
        for tag, stored in sorted(info.view.lists.items()):
            manifest = stored.manifest()
            ids = (manifest["page_ids"] if "page_ids" in manifest
                   else [row[2] for row in manifest["directory"]])
            payload.append((tag, len(stored), tuple(
                catalog.pager.page_file.read_page_raw(i) for i in ids
            )))
        rows[(name, scheme.value)] = (
            tuple(payload),
            info.num_pointers,
            info.view.pointer_stats.as_dict(),
        )
    return rows


def main() -> int:
    from repro.datasets import random_trees
    from repro.maintenance import (
        DeleteSubtree,
        InsertSubtree,
        RenameTag,
        UpdateLog,
        WAL_FILENAME,
        apply_deltas,
        recover_store,
    )
    from repro.service import QueryService
    from repro.storage.catalog import ViewCatalog
    from repro.storage.persistence import (
        load_catalog,
        read_store_version,
        save_catalog,
    )
    from repro.tpq.naive import find_embeddings
    from repro.tpq.parser import parse_pattern

    doc = random_trees.generate(size=200, max_depth=8, seed=3)
    patterns = [("//a//b", "w1"), ("//c", "w2")]
    # The canned log: a shift (alien tag), a splice trigger (rename to a
    # viewed tag) and a structural delete.  Each delta addresses the
    # document produced by the previous ones, exactly as a producer
    # would have written them.
    deltas = [
        InsertSubtree(parent_start=doc.nodes[0].start, position=0,
                      rows=(("zzz", 0), ("zzz", 1))),
    ]
    step, __ = apply_deltas(doc, deltas)
    deltas.append(RenameTag(node_start=step.nodes[4].start, new_tag="c"))
    step, __ = apply_deltas(step, deltas[-1:])
    deltas.append(DeleteSubtree(root_start=step.nodes[10].start))
    final, __ = apply_deltas(step, deltas[-1:])

    with tempfile.TemporaryDirectory(prefix="repro-maint-smoke-") as tmp:
        store = Path(tmp) / "store"
        with ViewCatalog(doc) as catalog:
            for xpath, name in patterns:
                catalog.add(parse_pattern(xpath, name=name), "LEp")
            save_catalog(catalog, store)

        # Append the canned WAL out-of-band — the store now looks like a
        # maintenance commit that logged its deltas and died before
        # repairing any pages.
        UpdateLog(store / WAL_FILENAME).append(deltas)
        replayed = recover_store(store)
        assert replayed == len(deltas), replayed
        assert recover_store(store) == 0, "replay must be idempotent"
        version, wal_lsn = read_store_version(store)
        assert (version, wal_lsn) == (2, len(deltas)), (version, wal_lsn)

        recovered = load_catalog(store)
        with ViewCatalog(final) as golden:
            for xpath, name in patterns:
                golden.add(parse_pattern(xpath, name=name), "LEp")
            assert fingerprint(recovered) == fingerprint(golden), (
                "recovered store diverges from golden rebuild"
            )
        recovered.close()

        with QueryService.open(str(store)) as service:
            for query in ["//a//b", "//c", "//a//b//c"]:
                truth = sorted(
                    tuple(n.start for n in m)
                    for m in find_embeddings(final, parse_pattern(query))
                )
                outcome = service.evaluate(query)
                assert outcome.match_keys == truth, query
    print(
        "maintenance smoke ok:"
        f" replayed {len(deltas)}-delta WAL, recovered store byte-equal"
        " to golden rebuild, answers match ground truth"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
