"""CI smoke: a fixed-seed chaos run must stay correct or typed.

Builds a deterministic store, takes the base-document ground truth
(naive embedding search), then evaluates the same query batch under a
fixed :class:`~repro.resilience.faults.FaultPlan` mixing page
corruption, worker kills and stalls.  Every outcome must either match
the ground truth exactly (possibly ``degraded=True``, recomputed from
the base document) or carry a typed error from the failure taxonomy —
silent wrong answers and hangs both fail the build.  The CI wrapper
additionally bounds the wall clock with ``timeout``.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

ERROR_KINDS = ("timeout", "worker-lost", "store-corrupt", "error")

FAULTS = (
    "seed=1789;page-read=corrupt:0.4;page-read=short:0.1;"
    "worker=kill:0.2;worker=stall:0.25:0.05"
)

QUERIES = ["//a//b//c", "//a[//b]//c", "//a//b", "//c"]


def main() -> int:
    from repro.datasets import random_trees
    from repro.resilience import FaultPlan, RetryPolicy, faults
    from repro.service import QueryService
    from repro.storage.catalog import ViewCatalog
    from repro.storage.persistence import save_catalog
    from repro.tpq.naive import find_embeddings
    from repro.tpq.parser import parse_pattern

    doc = random_trees.generate(size=400, max_depth=9, seed=29)
    truth = {
        query: sorted(
            tuple(n.start for n in m)
            for m in find_embeddings(doc, parse_pattern(query))
        )
        for query in QUERIES
    }

    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        store = Path(tmp) / "store"
        with ViewCatalog(doc) as catalog:
            catalog.add(parse_pattern("//a//b", name="w1"), "LEp")
            catalog.add(parse_pattern("//c", name="w2"), "LEp")
            save_catalog(catalog, store)

        with QueryService.open(
            str(store),
            retry_policy=RetryPolicy(max_attempts=3, base_delay_s=0.02,
                                     max_delay_s=0.2, seed=0),
        ) as service:
            service.warmup(QUERIES)
            service.snapshot()
            faults.install(FaultPlan.parse(FAULTS))
            try:
                batch = service.evaluate_parallel(
                    QUERIES, workers=2, deadline_s=60.0
                )
            finally:
                faults.uninstall()

            degraded = errored = correct = 0
            for outcome in batch.outcomes:
                if outcome.error:
                    kind = outcome.error.split(":", 1)[0]
                    if kind not in ERROR_KINDS:
                        print(f"FAIL: untyped error for {outcome.query}:"
                              f" {outcome.error}")
                        return 1
                    errored += 1
                    continue
                if sorted(outcome.match_keys) != truth[outcome.query]:
                    print(f"FAIL: wrong answer for {outcome.query}"
                          f" (degraded={outcome.degraded}):"
                          f" {len(outcome.match_keys)} keys,"
                          f" expected {len(truth[outcome.query])}")
                    return 1
                correct += 1
                degraded += outcome.degraded
            metrics = service.resilience_metrics()

        print(f"chaos plan    : {FAULTS}")
        print(f"queries       : {len(QUERIES)} "
              f"({correct} correct, {degraded} degraded, {errored} typed"
              " errors)")
        print(f"quarantined   : {metrics['quarantined_views']}")
        print(f"retries       : {metrics['job_retries']} job retries,"
              f" {metrics['pool_respawns']} pool respawns,"
              f" {metrics['deadline_expiries']} deadline expiries")
        if correct == 0:
            print("FAIL: no query produced a verified answer")
            return 1
        print("PASS: every outcome correct or typed under the fault plan")
    return 0


if __name__ == "__main__":
    sys.exit(main())
