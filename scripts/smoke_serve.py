"""CI smoke: the preemptible serving stack, end to end, every run.

Starts a real :class:`ViewJoinServer` on a loopback port with an
aggressive 1 ms wall-time quantum, pages a query through ``POST /query``
→ ``GET /next`` over actual HTTP until ``done``, and asserts the
protocol's equality contract: the concatenated pages and the final
cumulative counters must be byte-identical to the service's one-shot
answer.  Also checks the NDJSON streaming path, and that a replayed
spent token dies as ``410 Gone``.

The whole script runs under a hard wall-clock guard (a serving
regression that hangs must fail CI, not wedge it) on top of ci.sh's
outer ``timeout``.
"""

from __future__ import annotations

import http.client
import json
import sys
import threading

HARD_TIMEOUT_S = 90.0


def _request(port, method, path, body=None, headers=None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request(
            method, path,
            json.dumps(body) if body is not None else None,
            headers or {},
        )
        resp = conn.getresponse()
        return resp.status, json.loads(resp.read() or b"{}")
    finally:
        conn.close()


def main() -> int:
    from repro.datasets import random_trees
    from repro.server import BackgroundServer, ServerConfig
    from repro.service import QueryService
    from repro.storage.catalog import ViewCatalog

    query = "//a[//b]//c"
    doc = random_trees.generate(size=400, max_depth=9, seed=11)
    with ViewCatalog(doc) as catalog:
        with QueryService(catalog) as service:
            service.register("//a//c")
            service.register("//b")
            one = service.evaluate(query)
            assert one.match_count > 0, "smoke query must match something"

            config = ServerConfig(
                port=0, quantum_ms=1.0, quantum_steps=0, quantum_matches=8
            )
            with BackgroundServer(service, config) as bg:
                status, data = _request(
                    bg.port, "POST", "/query", {"query": query}
                )
                assert status == 200, (status, data)
                pages = [tuple(p) for p in data["page"]]
                spent = data.get("token")
                while not data["done"]:
                    spent = data["token"]
                    status, data = _request(
                        bg.port, "GET", "/next?token=" + data["token"]
                    )
                    assert status == 200, (status, data)
                    pages.extend(tuple(p) for p in data["page"])

                assert pages == list(one.match_keys), (
                    f"paged {len(pages)} keys != one-shot"
                    f" {len(one.match_keys)}"
                )
                assert data["match_count"] == one.match_count
                assert data["counters"] == one.counters.as_dict(), (
                    "cumulative counters diverged from the one-shot run"
                )
                quanta = data["quanta"]
                assert quanta > 1, "1 ms quantum never preempted"

                if spent is not None:
                    status, __ = _request(
                        bg.port, "GET", "/next?token=" + spent
                    )
                    assert status == 410, (
                        f"spent token must be Gone, got {status}"
                    )

                # NDJSON streaming drives the same chain server-side.
                conn = http.client.HTTPConnection(
                    "127.0.0.1", bg.port, timeout=30
                )
                conn.request(
                    "POST", "/query",
                    json.dumps({"query": query, "stream": True}),
                )
                resp = conn.getresponse()
                lines = [json.loads(l) for l in resp.read().splitlines()]
                conn.close()
                streamed = [
                    tuple(p) for line in lines for p in line["page"]
                ]
                assert streamed == list(one.match_keys)
                assert lines[-1]["done"]

                status, health = _request(bg.port, "GET", "/health")
                assert status == 200 and health["status"] == "ok"

    print(
        f"serve smoke OK: {len(pages)} matches over {quanta} quanta"
        f" (1 ms quantum), pages + counters == one-shot,"
        f" spent token -> 410, NDJSON stream equal"
    )
    return 0


if __name__ == "__main__":
    # The watchdog is a separate thread so a wedged HTTP exchange (the
    # failure mode this smoke exists to catch) cannot outlive CI.
    def _die():
        print(f"serve smoke HUNG (> {HARD_TIMEOUT_S:.0f}s)", flush=True)
        import os

        os._exit(2)

    watchdog = threading.Timer(HARD_TIMEOUT_S, _die)
    watchdog.daemon = True
    watchdog.start()
    try:
        sys.exit(main())
    finally:
        watchdog.cancel()
