"""Serving-latency benchmark: preemption vs head-of-line blocking.

The serving stack executes all engine work on a single lane (the service
is not thread-safe), so without preemption a heavy query parks every
light query behind it for its full runtime.  With bounded quanta the
lane round-robins: a light query waits at most ~one quantum before its
own quantum runs.

This script measures exactly that, over real HTTP: one client
continuously re-issues a **heavy** query (NDJSON streaming) while a
second client pages a **light** query to completion in a loop, recording
each light query's end-to-end latency (full chain, first byte to
``done``).  Two server configurations are compared:

* ``baseline``  — preemption disabled (no budget): the non-preemptible
  head-of-line world;
* ``preempt``   — a small wall-time quantum bounds every slice.

Writes ``BENCH_9.json`` with p50/p95/p99 light-query latency per
configuration.  The acceptance shape: the preemptible p99 stays bounded
near (light runtime + a few quanta), far below the baseline's p99 ≈
heavy runtime.

``--mode mvcc`` instead measures read latency during a **live update
storm** (MVCC snapshot reads, DESIGN.md §16): commits land between
every pair of reads, and two readers are timed against the same storm —
a *live* reader of the current generation, whose result-cache key rolls
with every commit so each read recomputes, and a *pinned* ``as_of``
reader whose generation-keyed entry survives every commit.  Writes
``BENCH_10.json``; the acceptance shape: the pinned reader's p99 stays
cache-hit flat, far below the live reader's recompute latency.

Usage::

    PYTHONPATH=src python scripts/bench_serve.py --out BENCH_9.json
    PYTHONPATH=src python scripts/bench_serve.py --mode mvcc
"""

from __future__ import annotations

import argparse
import http.client
import json
import statistics
import sys
import threading
import time

HEAVY_QUERY = "//a[//b]//c"
LIGHT_QUERY = "//a//b//c//d"
VIEWS = ("//a//c", "//b", "//a//b//c//d")


def _post(port, body, timeout=120):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        conn.request("POST", "/query", json.dumps(body))
        resp = conn.getresponse()
        return resp.status, resp.read()
    finally:
        conn.close()


def _get(port, path, timeout=120):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        conn.request("GET", path)
        resp = conn.getresponse()
        return resp.status, resp.read()
    finally:
        conn.close()


def _light_once(port) -> float:
    """One light query, paged to completion; returns seconds."""
    begin = time.perf_counter()
    status, raw = _post(port, {"query": LIGHT_QUERY})
    assert status == 200, raw[:200]
    data = json.loads(raw)
    while not data["done"]:
        status, raw = _get(port, "/next?token=" + data["token"])
        assert status == 200, raw[:200]
        data = json.loads(raw)
    return time.perf_counter() - begin


def _heavy_forever(port, stop: threading.Event, runs: list[int]):
    """Stream the heavy query back to back until told to stop."""
    while not stop.is_set():
        try:
            status, raw = _post(port, {"query": HEAVY_QUERY, "stream": True})
        except OSError:
            return  # server is gone; the window is over
        if status != 200:
            continue
        runs.append(raw.count(b"\n"))


def _percentiles(samples: list[float]) -> dict[str, float]:
    ordered = sorted(samples)

    def at(q: float) -> float:
        index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
        return ordered[index]

    return {
        "p50_ms": round(at(0.50) * 1000, 2),
        "p95_ms": round(at(0.95) * 1000, 2),
        "p99_ms": round(at(0.99) * 1000, 2),
        "max_ms": round(ordered[-1] * 1000, 2),
    }


def run_config(service, config, window_s: float) -> dict:
    from repro.server import BackgroundServer

    samples: list[float] = []
    heavy_runs: list[int] = []
    with BackgroundServer(service, config) as bg:
        _light_once(bg.port)  # warm the plan/materialization path
        stop = threading.Event()
        heavy = threading.Thread(
            target=_heavy_forever, args=(bg.port, stop, heavy_runs),
            daemon=True,
        )
        heavy.start()
        time.sleep(0.3)  # make sure the heavy stream is occupying the lane
        deadline = time.perf_counter() + window_s
        while time.perf_counter() < deadline:
            samples.append(_light_once(bg.port))
        stop.set()
        heavy.join(timeout=120)
    return {
        "samples": len(samples),
        "heavy_streams_completed": len(heavy_runs),
        **_percentiles(samples),
        "mean_ms": round(statistics.fmean(samples) * 1000, 2),
    }


def run_mvcc(args) -> int:
    """Read latency during a live update storm: pinned vs live reader."""
    import random

    from repro.datasets import random_trees
    from repro.maintenance import DeleteSubtree, InsertSubtree
    from repro.service import QueryService
    from repro.storage.catalog import ViewCatalog

    def one_delta(service, rng):
        doc = service.catalog.document
        if rng.random() < 0.5:
            victims = [
                n for n in doc.nodes
                if n.tag in ("b", "c") and n.end == n.start + 1
            ]
            if victims:
                return DeleteSubtree(root_start=rng.choice(victims).start)
        parent = rng.choice([n for n in doc.nodes if n.tag == "a"])
        return InsertSubtree(
            parent_start=parent.start, position=0,
            rows=(("b", 0), ("c", 1)),
        )

    doc = random_trees.generate(size=args.size, max_depth=6, seed=7)
    rng = random.Random(7)
    with ViewCatalog(doc) as catalog:
        with QueryService(catalog, result_cache_size=64) as service:
            for view in VIEWS:
                service.register(view)
            query = HEAVY_QUERY
            one = service.evaluate(query)
            pin = service.pin_generation()
            service.evaluate(query, as_of=pin)  # seed the pinned entry

            live: list[float] = []
            pinned: list[float] = []
            commit_s: list[float] = []
            for __ in range(args.storm_rounds):
                begin = time.perf_counter()
                service.apply_updates([one_delta(service, rng)])
                commit_s.append(time.perf_counter() - begin)
                begin = time.perf_counter()
                fresh = service.evaluate(query)
                live.append(time.perf_counter() - begin)
                assert not fresh.cached  # the commit rolled the live key
                begin = time.perf_counter()
                snap = service.evaluate(query, as_of=pin)
                pinned.append(time.perf_counter() - begin)
                assert snap.cached  # the pinned entry survived the commit
            service.unpin_generation(pin)

    results = {
        "live": {"samples": len(live), **_percentiles(live),
                 "mean_ms": round(statistics.fmean(live) * 1000, 2)},
        "pinned": {"samples": len(pinned), **_percentiles(pinned),
                   "mean_ms": round(statistics.fmean(pinned) * 1000, 2)},
    }
    record = {
        "description": (
            "read latency during a live update storm (one commit between"
            " every pair of reads): live reader of the rolling current"
            " generation (recomputes per commit) vs a pinned as_of reader"
            " whose generation-keyed result-cache entry survives every"
            " commit"
        ),
        "nodes": args.size,
        "query": HEAVY_QUERY,
        "matches": one.match_count,
        "storm_commits": args.storm_rounds,
        "commit_p50_ms": _percentiles(commit_s)["p50_ms"],
        "results": results,
        "p99_improvement": round(
            results["live"]["p99_ms"]
            / max(results["pinned"]["p99_ms"], 1e-6), 2
        ),
    }
    with open(args.out, "w") as handle:
        json.dump(record, handle, indent=1)
        handle.write("\n")
    print(json.dumps(record, indent=1))
    flat = results["pinned"]["p99_ms"] < results["live"]["p99_ms"]
    print("pinned reads flat under the storm:", "YES" if flat else "NO")
    return 0 if flat else 1


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--mode", choices=("serve", "mvcc"),
                        default="serve")
    parser.add_argument("--out", default=None,
                        help="output JSON (default BENCH_9.json for"
                             " serve, BENCH_10.json for mvcc)")
    parser.add_argument("--size", type=int, default=None,
                        help="document nodes (default 120000 serve,"
                             " 30000 mvcc)")
    parser.add_argument("--window", type=float, default=8.0,
                        help="measurement window per configuration (s)")
    parser.add_argument("--quantum-ms", type=float, default=10.0)
    parser.add_argument("--storm-rounds", type=int, default=150,
                        help="commit/read rounds in --mode mvcc")
    args = parser.parse_args()
    if args.out is None:
        args.out = "BENCH_10.json" if args.mode == "mvcc" else "BENCH_9.json"
    if args.size is None:
        args.size = 30000 if args.mode == "mvcc" else 120000
    if args.mode == "mvcc":
        return run_mvcc(args)

    from repro.datasets import random_trees
    from repro.server import ServerConfig
    from repro.service import QueryService
    from repro.storage.catalog import ViewCatalog

    # Shallow trees give many medium partitions, so the heavy query's
    # indivisible unit (one partition flush) stays well under the
    # one-shot runtime and preemption can slice finely.
    doc = random_trees.generate(size=args.size, max_depth=6, seed=7)
    with ViewCatalog(doc) as catalog:
        with QueryService(catalog) as service:
            for view in VIEWS:
                service.register(view)
            heavy_one = service.evaluate(HEAVY_QUERY)
            light_one = service.evaluate(LIGHT_QUERY)

            begin = time.perf_counter()
            service.evaluate(HEAVY_QUERY)
            heavy_s = time.perf_counter() - begin
            begin = time.perf_counter()
            service.evaluate(LIGHT_QUERY)
            light_s = time.perf_counter() - begin

            # Wall-time-only quanta: a match/page bound below the result
            # size would carry the pending output in every continuation
            # token (248 KiB tokens and 3x slowdown for the heavy query
            # here — see DESIGN.md §15's token-size tradeoff), which is
            # the interactive-pagination configuration, not the
            # latency-isolation one this benchmark measures.
            base = dict(port=0, max_inflight=8, quantum_matches=0)
            configs = {
                "baseline": ServerConfig(
                    **base, quantum_ms=0.0, quantum_steps=0,
                ),
                "preempt": ServerConfig(
                    **base, quantum_ms=args.quantum_ms, quantum_steps=0,
                ),
            }
            results = {}
            for name, config in configs.items():
                print(f"-- {name}: window {args.window:.0f}s …",
                      flush=True)
                results[name] = run_config(service, config, args.window)
                print(f"   {results[name]}", flush=True)

    record = {
        "description": (
            "light-query latency over HTTP while a heavy query streams"
            " concurrently on the single engine lane: preemptible quanta"
            " vs non-preemptible head-of-line baseline"
        ),
        "nodes": args.size,
        "heavy_query": HEAVY_QUERY,
        "heavy_matches": heavy_one.match_count,
        "heavy_one_shot_ms": round(heavy_s * 1000, 2),
        "light_query": LIGHT_QUERY,
        "light_matches": light_one.match_count,
        "light_one_shot_ms": round(light_s * 1000, 2),
        "quantum_ms": args.quantum_ms,
        "page_size": 0,
        "window_s": args.window,
        "results": results,
        "p99_improvement": round(
            results["baseline"]["p99_ms"] / results["preempt"]["p99_ms"], 2
        ),
    }
    with open(args.out, "w") as handle:
        json.dump(record, handle, indent=1)
        handle.write("\n")
    print(json.dumps(record, indent=1))
    bounded = (
        results["preempt"]["p99_ms"]
        < results["baseline"]["p99_ms"]
    )
    print("p99 bounded by preemption:", "YES" if bounded else "NO")
    return 0 if bounded else 1


if __name__ == "__main__":
    sys.exit(main())
