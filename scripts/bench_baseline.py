"""Wall-clock record for the columnar substrate (BENCH_<pr>.json).

Times a fixed set of substrate micro-operations plus the Fig. 5 XMark twig
queries, using only APIs that exist both before and after the columnar
substrate landed — so the same script, run on the two trees (or with
``REPRO_COLUMNAR=0`` vs ``1`` on the current tree), produces comparable
"before"/"after" sections.

Usage::

    PYTHONPATH=src python scripts/bench_baseline.py --out after.json
    python scripts/bench_baseline.py --merge before.json after.json \
        --out BENCH_1.json

The first form measures the current tree and writes one section; the
second merges two sections into the final before/after record with
speedup ratios.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time


def _median_seconds(fn, repeats: int = 5) -> float:
    samples = []
    for _ in range(repeats):
        begin = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - begin)
    return statistics.median(samples)


def measure() -> dict[str, float]:
    from repro.algorithms.base import Counters, CountingCursor
    from repro.algorithms.engine import evaluate
    from repro.datasets import random_trees, xmark
    from repro.storage.catalog import ViewCatalog
    from repro.storage.lists import StoredList
    from repro.storage.pager import Pager
    from repro.storage.records import ElementEntry, element_codec
    from repro.tpq.enumeration import enumerate_matches
    from repro.tpq.matching import solution_nodes
    from repro.tpq.parser import parse_pattern
    from repro.workloads import xmark as xw

    n = 20_000
    stored = StoredList(Pager(), element_codec(), name="bench")
    stored.extend(ElementEntry(i * 3, i * 3 + 2, 1) for i in range(n))
    stored.finalize()

    def scan():
        total = 0
        for entry in stored.scan():
            total += entry.start
        return total

    def cursor_drain():
        cursor = stored.cursor()
        while cursor.current is not None:
            cursor.advance()

    def counting_drain():
        cursor = CountingCursor(stored.cursor(), Counters())
        while not cursor.exhausted:
            cursor.advance()

    doc = random_trees.generate(
        size=3000, tags=list("abcd"), max_depth=9, seed=5
    )
    pattern = parse_pattern("//a//b//c")
    sols = solution_nodes(doc, pattern)

    results = {
        "micro_scan_s": _median_seconds(scan),
        "micro_cursor_s": _median_seconds(cursor_drain),
        "micro_counting_cursor_s": _median_seconds(counting_drain),
        "micro_enumeration_s": _median_seconds(
            lambda: enumerate_matches(pattern, sols)
        ),
    }

    xdoc = xmark.generate(scale=1.0, seed=42)
    with ViewCatalog(xdoc) as catalog:
        for spec in xw.TWIG_QUERIES:
            for engine, scheme in (("TS", "E"), ("VJ", "LE")):
                evaluate(spec.query, catalog, spec.views, engine, scheme)

            def run_query(spec=spec):
                for engine, scheme in (("TS", "E"), ("VJ", "LE")):
                    for mode in ("memory", "disk"):
                        evaluate(
                            spec.query, catalog, spec.views, engine,
                            scheme, mode=mode,
                        )

            results[f"fig5_{spec.name}_s"] = _median_seconds(run_query)
    return results


def measure_service(workers: tuple[int, ...] = (2, 4)) -> dict[str, object]:
    """Sequential-vs-parallel medians for a Fig. 5-style multi-query
    matrix through :class:`repro.service.QueryService` (BENCH_2.json).

    Both paths run the identical cold-per-cell job list — the only
    variable is the worker count — plus the two cache layers measured
    separately: planning cost with the plan cache off vs on, and a
    repeated batch with the result cache on.
    """
    import os

    from repro.bench.harness import TWIG_COMBOS
    from repro.datasets import xmark
    from repro.service import EvalJob, QueryService
    from repro.storage.catalog import ViewCatalog
    from repro.workloads import xmark as xw

    doc = xmark.generate(scale=1.0, seed=42)
    cpu_count = os.cpu_count() or 1
    results: dict[str, object] = {
        "cpu_count": cpu_count,
        "nodes": len(doc),
    }
    if cpu_count < 2:
        results["note"] = (
            "single schedulable CPU: worker processes time-slice one core,"
            " so parallel wall-clock cannot beat sequential here; the"
            " determinism contract (identical matches/counters) still"
            " holds and is what CI asserts"
        )
    with ViewCatalog(doc) as catalog:
        with QueryService(catalog) as service:
            jobs = [
                EvalJob.from_patterns(
                    index, spec.query, spec.views, algorithm, scheme,
                    emit_matches=False, query_name=spec.name,
                )
                for index, (spec, (algorithm, scheme)) in enumerate(
                    (spec, combo)
                    for spec in xw.TWIG_QUERIES
                    for combo in TWIG_COMBOS
                )
            ]
            results["matrix_jobs"] = len(jobs)
            service.warmup_jobs(jobs)
            service.snapshot()  # pay the store save outside timed regions
            results["matrix_sequential_s"] = _median_seconds(
                lambda: service.evaluate_jobs(jobs, workers=1), repeats=3
            )
            for count in workers:
                results[f"matrix_parallel_w{count}_s"] = _median_seconds(
                    lambda: service.evaluate_jobs(jobs, workers=count),
                    repeats=3,
                )
                results[f"parallel_speedup_w{count}"] = round(
                    results["matrix_sequential_s"]
                    / results[f"matrix_parallel_w{count}_s"], 3
                )

    queries = [spec.query for spec in xw.TWIG_QUERIES]
    with ViewCatalog(doc) as catalog:
        with QueryService(catalog, plan_cache_size=0) as uncached:
            for spec in xw.TWIG_QUERIES:
                for view in spec.views:
                    uncached.register(view)
            uncached.warmup(queries)
            results["batch_replan_every_time_s"] = _median_seconds(
                lambda: uncached.evaluate_batch(
                    queries, emit_matches=False
                ),
                repeats=3,
            )
    with ViewCatalog(doc) as catalog:
        with QueryService(catalog) as plan_cached:
            for spec in xw.TWIG_QUERIES:
                for view in spec.views:
                    plan_cached.register(view)
            plan_cached.warmup(queries)
            plan_cached.evaluate_batch(queries, emit_matches=False)
            results["batch_plan_cached_s"] = _median_seconds(
                lambda: plan_cached.evaluate_batch(
                    queries, emit_matches=False
                ),
                repeats=3,
            )
            results["plan_cache_speedup"] = round(
                results["batch_replan_every_time_s"]
                / results["batch_plan_cached_s"], 3
            )
            results["plan_cache_stats"] = (
                plan_cached.plan_cache_stats.as_dict()
            )
    with ViewCatalog(doc) as catalog:
        with QueryService(catalog, result_cache_size=64) as cached:
            for spec in xw.TWIG_QUERIES:
                for view in spec.views:
                    cached.register(view)
            cached.warmup(queries)
            cached.evaluate_batch(queries, emit_matches=False)  # warm
            results["batch_result_cached_s"] = _median_seconds(
                lambda: cached.evaluate_batch(queries, emit_matches=False),
                repeats=3,
            )
            results["result_cache_speedup"] = round(
                results["batch_replan_every_time_s"]
                / results["batch_result_cached_s"], 3
            )
            results["result_cache_stats"] = (
                cached.result_cache_stats.as_dict()
            )
    return results


def measure_maintenance(
    sequences: int = 9, deltas_per_sequence: int = 3, repeats: int = 5
) -> dict[str, object]:
    """Incremental view maintenance vs rebuild-from-scratch medians
    (BENCH_4.json).

    For seeded small-delta update sequences over XMark, times the view
    maintenance stage of a commit — ``repair_catalog(...)`` with the
    delta-driven repairs against ``force_rebuild=True`` (every view
    rematerialized from the updated document, what a catalog without
    maintenance support would have to do).  Applying the deltas to the
    document itself (``apply_deltas``) is *outside* the timed region:
    both strategies need the updated document and pay that cost
    identically, so it only dilutes the comparison of interest.

    The workload is generated with ``avoid_tags`` set to the catalog's
    view vocabulary: small edits structurally disjoint from every view,
    which the repair engine absorbs as pure page-level label SHIFTs —
    the case incremental maintenance exists for (``repair_actions`` in
    the output records the composition).  Edits that touch view tags
    degrade to SPLICE/REBUILD inside ``repair_catalog`` by design and
    gain nothing over rematerialization on a memory-resident document;
    their correctness is covered by the differential suites.
    """
    from repro.datasets import xmark
    from repro.datasets.updates import random_update_sequence
    from repro.maintenance import apply_deltas, repair_catalog
    from repro.storage.catalog import ViewCatalog
    from repro.tpq.parser import parse_pattern

    doc = xmark.generate(scale=1.0, seed=42)
    patterns = [
        ("//open_auctions//bidder", "v1"),
        ("//item", "v2"),
        ("//person//name", "v3"),
    ]
    schemes = ("LE", "LEp")
    view_tags = ["open_auctions", "bidder", "item", "person", "name"]
    tag_pool = ["keyword", "bold", "emph", "listitem", "incategory"]

    results: dict[str, object] = {
        "nodes": len(doc),
        "views": len(patterns) * len(schemes),
        "sequences": sequences,
        "deltas_per_sequence": deltas_per_sequence,
    }
    ratios: list[float] = []
    per_seed: list[dict[str, object]] = []
    action_totals: dict[str, int] = {}
    for seed in range(sequences):
        deltas, __ = random_update_sequence(
            doc, count=deltas_per_sequence, seed=seed, tag_pool=tag_pool,
            avoid_tags=view_tags,
        )
        # One catalog per seed: repair_catalog never mutates it (the
        # repaired views go to fresh pages and are simply discarded), so
        # every sample below starts from identical pre-update state.
        catalog = ViewCatalog(doc)
        for xpath, name in patterns:
            for scheme in schemes:
                catalog.add(parse_pattern(xpath, name=name), scheme)
        updated, changes = apply_deltas(doc, deltas)  # shared, untimed
        samples: dict[str, list[float]] = {"incremental": [], "rebuild": []}
        for repeat in range(repeats):
            for key, force in (("incremental", False), ("rebuild", True)):
                begin = time.perf_counter()
                __, rows = repair_catalog(
                    catalog, updated, changes, force_rebuild=force
                )
                samples[key].append(time.perf_counter() - begin)
                if key == "incremental" and repeat == 0:
                    for row in rows:
                        action_totals[row.action] = (
                            action_totals.get(row.action, 0) + 1
                        )
        catalog.close()
        incremental = statistics.median(samples["incremental"])
        rebuild = statistics.median(samples["rebuild"])
        ratios.append(rebuild / incremental)
        per_seed.append({
            "seed": seed,
            "incremental_s": round(incremental, 6),
            "rebuild_s": round(rebuild, 6),
            "speedup": round(rebuild / incremental, 3),
        })
    results["repair_actions"] = action_totals
    results["per_sequence"] = per_seed
    results["median_speedup"] = round(statistics.median(ratios), 3)
    results["min_speedup"] = round(min(ratios), 3)
    return results


def measure_batch(repeats: int = 7) -> dict[str, object]:
    """Shared-scan batch executor vs independent per-query evaluation
    (BENCH_6.json).

    Times ``evaluate_batch`` over seeded repeated-structure batches
    (:func:`repro.workloads.repeated_batch`) with the shared executor on
    and off, reporting median amortized per-query seconds and the work
    the shared path actually *executed* against the (byte-identical)
    merged logical counters both paths report.  The result cache and
    stream cache are invalidated between samples, so every sample
    measures within-batch CSE from a cold service — not cross-batch
    memoization.

    Cases: the headline duplicate-heavy batch (the gate: >= 1.5x median
    amortized speedup), an all-distinct batch and a singleton batch
    (both regression guards: the shared path must not lose on batches
    with nothing to share).
    """
    from repro.datasets import random_trees
    from repro.service import QueryService
    from repro.storage.catalog import ViewCatalog
    from repro.workloads import repeated_batch

    doc = random_trees.generate(
        size=4000, tags=list("abcd"), max_depth=10, seed=11
    )
    results: dict[str, object] = {
        "nodes": len(doc),
        "repeats": repeats,
        "cases": {},
    }

    def bench_case(workload) -> dict[str, object]:
        queries = workload.queries
        out: dict[str, object] = {
            "queries": len(queries),
            "distinct": len(workload.distinct()),
            "overlap": workload.overlap,
            "repeat_ratio": round(workload.repeat_ratio, 3),
        }
        with ViewCatalog(doc) as catalog:
            with QueryService(catalog) as service:
                for view in workload.views:
                    service.register(view)
                service.warmup(queries)
                medians: dict[str, float] = {}
                merged: dict[str, dict] = {}
                for key, shared in (
                    ("independent", False), ("shared", True),
                ):
                    samples = []
                    batch = None
                    for _ in range(repeats):
                        # Cold per sample: no result-cache or cross-batch
                        # stream replay — within-batch CSE only.
                        service.invalidate_results()
                        begin = time.perf_counter()
                        batch = service.evaluate_batch(
                            queries, shared=shared
                        )
                        samples.append(time.perf_counter() - begin)
                    medians[key] = statistics.median(samples)
                    merged[key] = batch.counters.as_dict()
                    merged[key]["logical_reads"] = batch.io.logical_reads
                    out[f"{key}_batch_s"] = round(medians[key], 6)
                    out[f"{key}_per_query_s"] = round(
                        medians[key] / len(queries), 9
                    )
                out["byte_identical_counters"] = (
                    merged["independent"] == merged["shared"]
                )
                out["amortized_speedup"] = round(
                    medians["independent"] / medians["shared"], 3
                )
                # Executed-vs-merged work: one more cold shared batch,
                # bracketed by the monotone shared-stats counters.
                service.invalidate_results()
                before = service.shared_metrics()
                batch = service.evaluate_batch(queries, shared=True)
                after = service.shared_metrics()
                out["jobs_run"] = after["jobs_run"] - before["jobs_run"]
                for field, merged_value in (
                    ("elements_scanned", batch.counters.elements_scanned),
                    ("logical_reads", batch.io.logical_reads),
                ):
                    executed = (
                        after[f"executed_{field}"]
                        - before[f"executed_{field}"]
                    )
                    out[f"merged_{field}"] = merged_value
                    out[f"executed_{field}"] = executed
                    out[f"{field}_reduction"] = round(
                        merged_value / executed, 3
                    ) if executed else None
        return out

    cases = results["cases"]
    cases["overlap60"] = bench_case(repeated_batch(24, overlap=0.6, seed=7))
    cases["all_distinct"] = bench_case(
        repeated_batch(8, overlap=0.0, seed=7)
    )
    cases["singleton"] = bench_case(repeated_batch(1, overlap=0.0, seed=7))
    results["median_amortized_speedup"] = (
        cases["overlap60"]["amortized_speedup"]
    )
    return results


def measure_advisor(
    phases: int = 3, per_phase: int = 30, passes: int = 3, repeats: int = 3
) -> dict[str, object]:
    """Online adaptive view advisor vs advisor-disabled baseline
    (BENCH_7.json).

    Replays a seeded drifting workload (:func:`repro.workloads.
    drifting_batches`: the hot template set rotates between phases) as
    an *online stream* — one ``evaluate`` call per arriving query, the
    traffic shape the advisor mines — through two services over the
    same document: one with the advisor off, one that runs an adoption
    cycle after the first pass of each phase.  Result caches are off
    and stream caches invalidated between passes, so the on-path
    advantage is exactly the adopted views — and the advisor side's
    totals *include* both the recorder overhead on every query and the
    cycle itself (calibration, planning, materialization), so the
    reported speedup is amortized, not cherry-picked.

    Timed passes serve counts (``emit_matches=False``): match
    *emission* costs the same with or without views — it is pure output
    materialization downstream of evaluation — so timing it would only
    dilute the effect being measured.  Full-match byte-identity is
    asserted separately: an untimed verification pass per phase with
    ``emit_matches=True`` compares (query, match keys, count, refuted)
    between the two services.

    The gate: >= 1.5x median amortized per-query speedup across phases,
    measured storage under budget after every cycle, and byte-identical
    answers on every verification pass.
    """
    from repro.datasets import random_trees
    from repro.service import QueryService
    from repro.storage.catalog import ViewCatalog
    from repro.workloads import drifting_batches

    doc = random_trees.generate(
        size=4000, tags=list("abcd"), max_depth=6, seed=11
    )
    budget = float(1 << 20)
    workload = drifting_batches(
        phases=phases, per_phase=per_phase, overlap=0.6, seed=7
    )
    results: dict[str, object] = {
        "nodes": len(doc),
        "phases": phases,
        "per_phase": per_phase,
        "passes_per_phase": passes,
        "repeats": repeats,
        "budget_bytes": budget,
        "per_phase_results": [],
    }

    def stream_pass(service, queries):
        """Serve the phase's queries one at a time, like live traffic."""
        service.invalidate_results()
        begin = time.perf_counter()
        for query in queries:
            service.evaluate(query, emit_matches=False)
        return time.perf_counter() - begin

    def verify_pass(service, queries):
        service.invalidate_results()
        return [
            (o.query, o.match_keys, o.match_count, o.refuted)
            for o in (service.evaluate(query) for query in queries)
        ]

    byte_identical = True
    speedups: list[float] = []
    with ViewCatalog(doc) as catalog:
        with QueryService(catalog, result_cache_size=0) as off:
            with ViewCatalog(doc) as advised_catalog:
                with QueryService(
                    advised_catalog, result_cache_size=0,
                    advisor=True, advisor_budget_bytes=budget,
                ) as on:
                    for index, phase in enumerate(workload):
                        queries = phase.queries
                        off_samples: list[float] = []
                        on_samples: list[float] = []
                        cycle_s = 0.0
                        for repeat in range(repeats):
                            off_total = on_total = 0.0
                            for pass_no in range(passes):
                                off_total += stream_pass(off, queries)
                                on_total += stream_pass(on, queries)
                                if repeat == 0 and pass_no == 0:
                                    # First sight of the phase's traffic:
                                    # adopt.  The cycle cost lands in the
                                    # advisor side's total.
                                    begin = time.perf_counter()
                                    on.advisor_cycle()
                                    cycle_s = time.perf_counter() - begin
                                    on_total += cycle_s
                            off_samples.append(off_total)
                            on_samples.append(on_total)
                        byte_identical &= (
                            verify_pass(off, queries)
                            == verify_pass(on, queries)
                        )
                        metrics = on.advisor_metrics()
                        assert metrics["adopted_bytes"] <= budget
                        off_median = statistics.median(off_samples)
                        on_median = statistics.median(on_samples)
                        speedups.append(off_median / on_median)
                        results["per_phase_results"].append({
                            "phase": index,
                            "queries": len(queries),
                            "advisor_off_s": round(off_median, 6),
                            "advisor_on_s": round(on_median, 6),
                            "advisor_cycle_s": round(cycle_s, 6),
                            "off_per_query_s": round(
                                off_median / (passes * len(queries)), 9
                            ),
                            "on_per_query_s": round(
                                on_median / (passes * len(queries)), 9
                            ),
                            "amortized_speedup": round(
                                off_median / on_median, 3
                            ),
                            "adopted_views": list(
                                metrics["adopted_views"]
                            ),
                            "adopted_bytes": round(
                                metrics["adopted_bytes"], 1
                            ),
                        })
                    final = on.advisor_metrics()
    results["byte_identical_answers"] = byte_identical
    results["median_amortized_speedup"] = round(
        statistics.median(speedups), 3
    )
    results["min_amortized_speedup"] = round(min(speedups), 3)
    results["storage_under_budget"] = final["adopted_bytes"] <= budget
    results["final_adopted_bytes"] = round(final["adopted_bytes"], 1)
    results["advisor_cycles"] = final["cycles"]
    results["advisor_events"] = final["events"]
    return results


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", required=True)
    parser.add_argument(
        "--merge", nargs=2, metavar=("BEFORE", "AFTER"),
        help="merge two measurement files into a before/after record",
    )
    parser.add_argument(
        "--service", action="store_true",
        help="measure the query service (sequential vs parallel medians"
             " plus cache layers) instead of the substrate benchmarks",
    )
    parser.add_argument(
        "--maintenance", action="store_true",
        help="measure incremental view maintenance vs rebuild-from-"
             "scratch over seeded small-delta update sequences",
    )
    parser.add_argument(
        "--batch", action="store_true",
        help="measure the shared-scan batch executor vs independent"
             " per-query evaluation over repeated-structure batches",
    )
    parser.add_argument(
        "--advisor", action="store_true",
        help="measure the online adaptive view advisor vs an advisor-"
             "disabled baseline over a seeded drifting workload",
    )
    args = parser.parse_args()
    if args.advisor:
        record = {
            "description": "online adaptive view advisor vs advisor-off"
                           " baseline: amortized per-query medians (s),"
                           " adoption/drop events, and storage vs budget"
                           " over a seeded drifting workload",
            **measure_advisor(),
        }
        json.dump(record, open(args.out, "w"), indent=1)
        print(json.dumps(record, indent=1))
        return
    if args.batch:
        record = {
            "description": "shared-scan batch executor vs independent"
                           " per-query evaluation: median amortized"
                           " per-query seconds and executed-vs-merged"
                           " work over seeded repeated-structure batches",
            **measure_batch(),
        }
        json.dump(record, open(args.out, "w"), indent=1)
        print(json.dumps(record, indent=1))
        return
    if args.maintenance:
        record = {
            "description": "incremental view maintenance (repair stage)"
                           " vs per-view rebuild medians (s) over seeded"
                           " small view-disjoint XMark update sequences",
            **measure_maintenance(),
        }
        json.dump(record, open(args.out, "w"), indent=1)
        print(json.dumps(record, indent=1))
        return
    if args.service:
        record = {
            "description": "query service sequential-vs-parallel medians"
                           " (s) and cache-layer effects",
            **measure_service(),
        }
        json.dump(record, open(args.out, "w"), indent=1)
        print(json.dumps(record, indent=1))
        return
    if args.merge:
        before = json.load(open(args.merge[0]))
        after = json.load(open(args.merge[1]))
        record = {
            "description": "columnar substrate before/after medians (s)",
            "before": before,
            "after": after,
            "speedup": {
                key: round(before[key] / after[key], 3)
                for key in sorted(before)
                if key in after and after[key] > 0
            },
        }
        json.dump(record, open(args.out, "w"), indent=1)
        print(json.dumps(record["speedup"], indent=1))
        return
    results = measure()
    json.dump(results, open(args.out, "w"), indent=1)
    print(json.dumps(results, indent=1))


if __name__ == "__main__":
    sys.exit(main())
