"""Wall-clock record for the columnar substrate (BENCH_<pr>.json).

Times a fixed set of substrate micro-operations plus the Fig. 5 XMark twig
queries, using only APIs that exist both before and after the columnar
substrate landed — so the same script, run on the two trees (or with
``REPRO_COLUMNAR=0`` vs ``1`` on the current tree), produces comparable
"before"/"after" sections.

Usage::

    PYTHONPATH=src python scripts/bench_baseline.py --out after.json
    python scripts/bench_baseline.py --merge before.json after.json \
        --out BENCH_1.json

The first form measures the current tree and writes one section; the
second merges two sections into the final before/after record with
speedup ratios.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time


def _median_seconds(fn, repeats: int = 5) -> float:
    samples = []
    for _ in range(repeats):
        begin = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - begin)
    return statistics.median(samples)


def measure() -> dict[str, float]:
    from repro.algorithms.base import Counters, CountingCursor
    from repro.algorithms.engine import evaluate
    from repro.datasets import random_trees, xmark
    from repro.storage.catalog import ViewCatalog
    from repro.storage.lists import StoredList
    from repro.storage.pager import Pager
    from repro.storage.records import ElementEntry, element_codec
    from repro.tpq.enumeration import enumerate_matches
    from repro.tpq.matching import solution_nodes
    from repro.tpq.parser import parse_pattern
    from repro.workloads import xmark as xw

    n = 20_000
    stored = StoredList(Pager(), element_codec(), name="bench")
    stored.extend(ElementEntry(i * 3, i * 3 + 2, 1) for i in range(n))
    stored.finalize()

    def scan():
        total = 0
        for entry in stored.scan():
            total += entry.start
        return total

    def cursor_drain():
        cursor = stored.cursor()
        while cursor.current is not None:
            cursor.advance()

    def counting_drain():
        cursor = CountingCursor(stored.cursor(), Counters())
        while not cursor.exhausted:
            cursor.advance()

    doc = random_trees.generate(
        size=3000, tags=list("abcd"), max_depth=9, seed=5
    )
    pattern = parse_pattern("//a//b//c")
    sols = solution_nodes(doc, pattern)

    results = {
        "micro_scan_s": _median_seconds(scan),
        "micro_cursor_s": _median_seconds(cursor_drain),
        "micro_counting_cursor_s": _median_seconds(counting_drain),
        "micro_enumeration_s": _median_seconds(
            lambda: enumerate_matches(pattern, sols)
        ),
    }

    xdoc = xmark.generate(scale=1.0, seed=42)
    with ViewCatalog(xdoc) as catalog:
        for spec in xw.TWIG_QUERIES:
            for engine, scheme in (("TS", "E"), ("VJ", "LE")):
                evaluate(spec.query, catalog, spec.views, engine, scheme)

            def run_query(spec=spec):
                for engine, scheme in (("TS", "E"), ("VJ", "LE")):
                    for mode in ("memory", "disk"):
                        evaluate(
                            spec.query, catalog, spec.views, engine,
                            scheme, mode=mode,
                        )

            results[f"fig5_{spec.name}_s"] = _median_seconds(run_query)
    return results


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", required=True)
    parser.add_argument(
        "--merge", nargs=2, metavar=("BEFORE", "AFTER"),
        help="merge two measurement files into a before/after record",
    )
    args = parser.parse_args()
    if args.merge:
        before = json.load(open(args.merge[0]))
        after = json.load(open(args.merge[1]))
        record = {
            "description": "columnar substrate before/after medians (s)",
            "before": before,
            "after": after,
            "speedup": {
                key: round(before[key] / after[key], 3)
                for key in sorted(before)
                if key in after and after[key] > 0
            },
        }
        json.dump(record, open(args.out, "w"), indent=1)
        print(json.dumps(record["speedup"], indent=1))
        return
    results = measure()
    json.dump(results, open(args.out, "w"), indent=1)
    print(json.dumps(results, indent=1))


if __name__ == "__main__":
    sys.exit(main())
