"""CI smoke: the online adaptive view advisor every run.

Records a canned repeated-structure workload into a fresh advisor-enabled
service, runs one advisor cycle, and asserts the adoption contract:

* at least one view was adopted and the measured storage stays under the
  configured budget;
* the post-adoption batch answers **byte-identically** (match keys, match
  counts, cached/refuted flags) to the pre-adoption truth;
* the adopted views **strictly reduce** the measured work and logical
  reads of the workload (the whole point of adopting them);
* the recorded log replays deterministically: planning adoption twice
  from the same log yields the identical decision sequence.
"""

from __future__ import annotations

import sys


def result_key(batch):
    return [
        (o.query, o.match_keys, o.match_count, o.refuted)
        for o in batch.outcomes
    ]


def main() -> int:
    from repro.datasets import random_trees
    from repro.selection.online import plan_adoption
    from repro.service import QueryService
    from repro.storage.catalog import ViewCatalog
    from repro.workloads import repeated_batch

    doc = random_trees.generate(size=400, tags="abcd", max_depth=8, seed=11)
    workload = repeated_batch(30, overlap=0.6, seed=5)
    budget = 150_000.0

    with ViewCatalog(doc) as catalog:
        with QueryService(
            catalog, advisor=True, advisor_budget_bytes=budget
        ) as service:
            before = service.evaluate_batch(workload.queries)
            plan = service.advisor_cycle()
            assert plan.adopt, "canned workload must adopt at least one view"

            metrics = service.advisor_metrics()
            assert metrics["enabled"] and metrics["cycles"] == 1
            assert metrics["adopted_bytes"] <= budget, (
                metrics["adopted_bytes"], budget,
            )

            after = service.evaluate_batch(workload.queries)
            assert result_key(before) == result_key(after), (
                "adopted views changed answers"
            )
            assert after.counters.work < before.counters.work, (
                "adoption must strictly reduce measured work:"
                f" {before.counters.work} -> {after.counters.work}"
            )
            assert after.io.logical_reads < before.io.logical_reads, (
                "adoption must strictly reduce logical reads:"
                f" {before.io.logical_reads} -> {after.io.logical_reads}"
            )

            # Determinism: the same recorded log plans identically.
            log = service.advisor_log
            from repro.selection.estimates import DocumentStatistics
            from repro.selection.online import CalibratedStatistics

            stats = DocumentStatistics.collect(doc)
            calibration = CalibratedStatistics.from_log(stats, log)
            one = plan_adoption(log, calibration, budget_bytes=budget)
            two = plan_adoption(log, calibration, budget_bytes=budget)
            assert [d.as_dict() for d in one.decisions] == [
                d.as_dict() for d in two.decisions
            ], "advisor decisions must be deterministic for a fixed log"

    print(
        "advisor smoke ok:"
        f" {len(plan.adopt)} view(s) adopted under"
        f" {int(metrics['adopted_bytes'])}/{int(budget)} bytes,"
        f" work {before.counters.work} -> {after.counters.work},"
        f" logical reads {before.io.logical_reads} ->"
        f" {after.io.logical_reads}, byte-identical answers"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
