"""Ablation A1: the LE_p materialization-distance threshold.

The paper fixes the rule at "materialize a following/descendant pointer
only if the target is more than one entry away" (Section III-C).  We sweep
the threshold: 1 (the paper's rule) through larger values that drop ever
more pointers, measuring view size, pointer counts and ViewJoin work.
Expected: size decreases monotonically with the threshold; evaluation work
rises gently once useful long jumps start being dropped; matches never
change (correctness is threshold-independent).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_report
from repro.algorithms.engine import evaluate
from repro.bench.report import format_table
from repro.storage.catalog import ViewCatalog
from repro.workloads import nasa

THRESHOLDS = (1, 2, 4, 8)
SPEC_NAMES = ("N1", "N5", "N7")


@pytest.fixture(scope="module")
def sweep(nasa_doc):
    rows = []
    match_counts: dict[str, set[int]] = {}
    for threshold in THRESHOLDS:
        with ViewCatalog(nasa_doc, partial_distance=threshold) as catalog:
            for name in SPEC_NAMES:
                spec = nasa.BY_NAME[name]
                result = evaluate(
                    spec.query, catalog, spec.views, "VJ", "LEp",
                    emit_matches=False,
                )
                size = sum(
                    info.size_bytes
                    for info in catalog.views()
                    if info.pattern in spec.views
                )
                pointers = sum(
                    info.num_pointers
                    for info in catalog.views()
                    if info.pattern in spec.views
                )
                rows.append(
                    [threshold, name, size, pointers,
                     result.counters.work,
                     result.counters.pointer_jumps,
                     result.match_count]
                )
                match_counts.setdefault(name, set()).add(result.match_count)
    write_report(
        "ablation_pointer_threshold",
        "Ablation A1 — LE_p materialization threshold sweep (VJ+LEp, NASA):",
        format_table(
            ["threshold", "query", "view bytes", "#pointers", "work",
             "jumps", "matches"],
            rows,
        ),
    )
    return rows, match_counts


def test_matches_invariant(sweep):
    __, match_counts = sweep
    assert all(len(counts) == 1 for counts in match_counts.values())


def test_pointer_count_monotone_in_threshold(sweep):
    rows, __ = sweep
    for name in SPEC_NAMES:
        pointers = [row[3] for row in rows if row[1] == name]
        assert pointers == sorted(pointers, reverse=True), (name, pointers)


def test_size_monotone_in_threshold(sweep):
    rows, __ = sweep
    for name in SPEC_NAMES:
        sizes = [row[2] for row in rows if row[1] == name]
        assert sizes == sorted(sizes, reverse=True), (name, sizes)


@pytest.mark.parametrize("threshold", THRESHOLDS)
def test_bench_threshold(benchmark, nasa_doc, threshold):
    spec = nasa.BY_NAME["N5"]
    with ViewCatalog(nasa_doc, partial_distance=threshold) as catalog:
        catalog.add_all(spec.views, "LEp")

        def run():
            return evaluate(
                spec.query, catalog, spec.views, "VJ", "LEp",
                emit_matches=False,
            ).match_count

        assert benchmark(run) >= 0
