"""Fig. 6: impact of interleaving conditions between query and views.

N_p (path) with view sets PV1-PV4 (5, 4, 3, 2 inter-view edges) and N_t
(twig) with TV1-TV4 (6, 4, 3, 2).  Paper's expected shape: TS is flat in
the number of inter-view edges; IJ, VJ+LE and VJ+LEp improve as the count
drops (more precomputed joins get reused); VJ+E benefits least.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_report
from repro.algorithms.engine import evaluate
from repro.bench.harness import run_combo
from repro.bench.report import format_records
from repro.workloads import nasa

PATH_COMBOS = [("IJ", "T"), ("TS", "E"), ("VJ", "E"), ("VJ", "LE"),
               ("VJ", "LEp")]
TWIG_COMBOS = [("TS", "E"), ("VJ", "E"), ("VJ", "LE"), ("VJ", "LEp")]


def _run_sets(catalog, query, view_sets, combos, dataset):
    records = []
    for set_name, views in view_sets.items():
        for algorithm, scheme in combos:
            record = run_combo(
                catalog, query, views, algorithm, scheme,
                dataset=dataset,
                query_name=f"{set_name}({nasa.EXPECTED_CONDITIONS[set_name]})",
            )
            records.append(record)
    return records


@pytest.fixture(scope="module")
def path_records(nasa_catalog):
    return _run_sets(
        nasa_catalog, nasa.QUERY_NP, nasa.PATH_VIEW_SETS, PATH_COMBOS, "nasa"
    )


@pytest.fixture(scope="module")
def twig_records(nasa_catalog):
    return _run_sets(
        nasa_catalog, nasa.QUERY_NT, nasa.TWIG_VIEW_SETS, TWIG_COMBOS, "nasa"
    )


@pytest.fixture(scope="module", autouse=True)
def report(path_records, twig_records):
    write_report(
        "fig6_interleaving",
        "Fig. 6(a) — N_p with PV1..PV4 (inter-view edges in parens), ms:",
        format_records(path_records, metric="ms"),
        "work counters:",
        format_records(path_records, metric="work"),
        "Fig. 6(b) — N_t with TV1..TV4, ms:",
        format_records(twig_records, metric="ms"),
        "work counters:",
        format_records(twig_records, metric="work"),
    )


def test_all_view_sets_agree_on_matches(path_records, twig_records):
    for records in (path_records, twig_records):
        counts = {record.matches for record in records}
        assert len(counts) == 1, counts


def test_vj_improves_with_fewer_interleavings(twig_records):
    """VJ+LE work at 2 inter-view edges is below the 6-edge work."""
    by = {(r.query, r.combo): r for r in twig_records}
    most = by[("TV1(6)", "VJ+LE")].work
    least = by[("TV4(2)", "VJ+LE")].work
    assert least < most


def test_ts_flat_in_interleavings(twig_records):
    """TS ignores precomputed joins: its scan volume is view-set invariant
    up to list-size differences (within 2x across TV1..TV4)."""
    by = {(r.query, r.combo): r for r in twig_records}
    works = [by[(f"TV{i}({c})", "TS+E")].counters.elements_scanned
             for i, c in [(1, 6), (2, 4), (3, 3), (4, 2)]]
    assert max(works) <= 2 * min(works)


@pytest.mark.parametrize("set_name", list(nasa.PATH_VIEW_SETS))
@pytest.mark.parametrize("combo", PATH_COMBOS, ids=lambda c: f"{c[0]}+{c[1]}")
def test_bench_np(benchmark, nasa_catalog, set_name, combo):
    algorithm, scheme = combo
    views = nasa.PATH_VIEW_SETS[set_name]

    def run():
        return evaluate(
            nasa.QUERY_NP, nasa_catalog, views, algorithm, scheme,
            emit_matches=False,
        ).match_count

    assert benchmark(run) >= 0


@pytest.mark.parametrize("set_name", list(nasa.TWIG_VIEW_SETS))
@pytest.mark.parametrize("combo", TWIG_COMBOS, ids=lambda c: f"{c[0]}+{c[1]}")
def test_bench_nt(benchmark, nasa_catalog, set_name, combo):
    algorithm, scheme = combo
    views = nasa.TWIG_VIEW_SETS[set_name]

    def run():
        return evaluate(
            nasa.QUERY_NT, nasa_catalog, views, algorithm, scheme,
            emit_matches=False,
        ).match_count

    assert benchmark(run) >= 0
