"""Ablation A3: page size and buffer-pool sensitivity of the I/O counters.

The storage substrate fixes 4 KiB pages and a 64-page LRU pool by default.
We sweep both knobs under a fixed workload (VJ+LE on N5) and record
logical/physical reads.  Expected: logical reads (buffer-pool requests,
one per record access) are invariant; physical reads shrink as pages grow
(fewer pages hold the same lists) and as the pool grows, until the working
set fits; matches are invariant.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_report
from repro.algorithms.engine import evaluate
from repro.bench.report import format_table
from repro.storage.catalog import ViewCatalog
from repro.storage.pager import Pager
from repro.workloads import nasa

PAGE_SIZES = (1024, 2048, 4096, 8192, 16384)
POOL_SIZES = (4, 16, 64, 256)


def _run(nasa_doc, page_size, pool_capacity):
    pager = Pager(page_size=page_size, pool_capacity=pool_capacity)
    spec = nasa.BY_NAME["N5"]
    with ViewCatalog(nasa_doc, pager=pager) as catalog:
        result = evaluate(
            spec.query, catalog, spec.views, "VJ", "LE", emit_matches=False
        )
    return result


@pytest.fixture(scope="module")
def sweep(nasa_doc):
    page_rows = []
    for page_size in PAGE_SIZES:
        result = _run(nasa_doc, page_size, 64)
        page_rows.append(
            [page_size, result.io.logical_reads, result.io.physical_reads,
             result.match_count]
        )
    pool_rows = []
    for pool in POOL_SIZES:
        result = _run(nasa_doc, 1024, pool)
        pool_rows.append(
            [pool, result.io.logical_reads, result.io.physical_reads,
             result.match_count]
        )
    write_report(
        "ablation_pager",
        "Ablation A3 — page-size sweep (pool=64), VJ+LE on N5:",
        format_table(["page bytes", "logical", "physical", "matches"],
                     page_rows),
        "buffer-pool sweep (page=1KiB):",
        format_table(["pool pages", "logical", "physical", "matches"],
                     pool_rows),
    )
    return page_rows, pool_rows


def test_matches_invariant(sweep):
    page_rows, pool_rows = sweep
    assert len({row[3] for row in page_rows + pool_rows}) == 1


def test_bigger_pages_fewer_physical_reads(sweep):
    """Logical reads count buffer-pool requests (one per record access),
    so they are page-size invariant; the physical reads behind them shrink
    as more records share a page."""
    page_rows, __ = sweep
    logical = [row[1] for row in page_rows]
    physical = [row[2] for row in page_rows]
    assert len(set(logical)) == 1
    assert physical[-1] < physical[0]


def test_bigger_pool_fewer_physical_reads(sweep):
    __, pool_rows = sweep
    physical = [row[2] for row in pool_rows]
    assert physical[-1] <= physical[0]


@pytest.mark.parametrize("page_size", PAGE_SIZES)
def test_bench_page_size(benchmark, nasa_doc, page_size):
    spec = nasa.BY_NAME["N5"]
    pager = Pager(page_size=page_size, pool_capacity=64)
    with ViewCatalog(nasa_doc, pager=pager) as catalog:
        catalog.add_all(spec.views, "LE")

        def run():
            return evaluate(
                spec.query, catalog, spec.views, "VJ", "LE",
                emit_matches=False,
            ).match_count

        assert benchmark(run) >= 0
