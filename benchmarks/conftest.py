"""Shared fixtures and reporting helpers for the benchmark suite.

Every benchmark module measures wall-clock time through pytest-benchmark
*and* writes the paper-shaped result table (per-query × per-combo, with
machine-independent work counters) to ``benchmarks/results/<exp>.txt`` so
EXPERIMENTS.md can record paper-vs-measured without scraping test output.

Scales are chosen so the full suite finishes in minutes on one machine;
override with the ``REPRO_BENCH_SCALE`` environment variable (a multiplier
applied to every dataset scale).
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.datasets import nasa as nasa_data
from repro.datasets import xmark as xmark_data
from repro.storage.catalog import ViewCatalog

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: Dataset scales standing in for the paper's "standard" documents.
XMARK_SCALE = 2.0 * _SCALE
NASA_SCALE = 3.0 * _SCALE


def write_report(name: str, *sections: str) -> None:
    """Persist an experiment's text report under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text("\n\n".join(sections) + "\n", encoding="utf-8")


@pytest.fixture(scope="session")
def xmark_doc():
    return xmark_data.generate(scale=XMARK_SCALE, seed=42)


@pytest.fixture(scope="session")
def nasa_doc():
    return nasa_data.generate(scale=NASA_SCALE, seed=42)


@pytest.fixture(scope="session")
def xmark_catalog(xmark_doc):
    with ViewCatalog(xmark_doc) as catalog:
        yield catalog


@pytest.fixture(scope="session")
def nasa_catalog(nasa_doc):
    with ViewCatalog(nasa_doc) as catalog:
        yield catalog
