"""Ablation A5: materialization cost per storage scheme.

The paper reports query-time numbers only; view *build* cost is the other
side of the trade.  We materialize a representative view mix in all four
schemes and compare build time, bytes and pages written.  Expected: E is
cheapest to build, T pays match enumeration (worst under redundancy), LE
pays pointer computation, LE_p sits between E and LE on bytes.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import write_report
from repro.bench.report import format_table
from repro.storage.catalog import materialize
from repro.storage.pager import Pager
from repro.tpq.parser import parse_pattern

VIEW_TEXTS = (
    "//item//text//keyword",      # redundant: tuple blow-up
    "//person//education",         # 1:1
    "//open_auction//bidder//increase",
)
SCHEMES = ("E", "T", "LE", "LEp")


@pytest.fixture(scope="module")
def build_rows(xmark_doc):
    rows = []
    for text in VIEW_TEXTS:
        pattern = parse_pattern(text)
        for scheme in SCHEMES:
            pager = Pager()
            begin = time.perf_counter()
            view = materialize(xmark_doc, pattern, scheme, pager=pager)
            elapsed = (time.perf_counter() - begin) * 1e3
            rows.append(
                [text, scheme, round(elapsed, 2), view.size_bytes,
                 pager.page_file.stats.pages_written]
            )
            pager.close()
    write_report(
        "ablation_materialization",
        "Ablation A5 — materialization cost per scheme (XMark):",
        format_table(
            ["view", "scheme", "build ms", "bytes", "pages written"], rows
        ),
    )
    return rows


def test_element_cheapest_bytes(build_rows):
    for text in VIEW_TEXTS:
        sizes = {row[1]: row[3] for row in build_rows if row[0] == text}
        assert sizes["E"] == min(sizes.values()), text


def test_lep_between_e_and_le(build_rows):
    for text in VIEW_TEXTS:
        sizes = {row[1]: row[3] for row in build_rows if row[0] == text}
        assert sizes["E"] <= sizes["LEp"] <= sizes["LE"], text


@pytest.mark.parametrize("scheme", SCHEMES)
def test_bench_build(benchmark, xmark_doc, scheme):
    pattern = parse_pattern(VIEW_TEXTS[0])

    def run():
        pager = Pager()
        view = materialize(xmark_doc, pattern, scheme, pager=pager)
        size = view.size_bytes
        pager.close()
        return size

    assert benchmark(run) > 0
