"""Ablation A6: strict pc-edge admission for TwigStack.

Classic TwigStack treats pc-edges as ad-edges during filtering and checks
levels only at output, admitting candidates that can never join — the
known suboptimality later holistic joins (TwigStackList et al.) remove.
Our ``strict_pc`` option admits a pc-child only when its direct parent is
a buffered candidate.  We measure the candidate and enumeration savings on
the pc-edge queries of the workloads (N3, N6) and on synthetic pc chains.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_report
from repro.algorithms.engine import evaluate
from repro.bench.report import format_table
from repro.datasets import random_trees
from repro.storage.catalog import ViewCatalog
from repro.tpq.parser import parse_pattern
from repro.workloads import nasa


def _cases(nasa_catalog):
    yield "N3", nasa.BY_NAME["N3"].query, nasa.BY_NAME["N3"].views, \
        nasa_catalog, None
    yield "N6", nasa.BY_NAME["N6"].query, nasa.BY_NAME["N6"].views, \
        nasa_catalog, None
    doc = random_trees.generate(
        size=600, tags=list("abc"), max_depth=10, seed=3
    )
    catalog = ViewCatalog(doc)
    query = parse_pattern("//a/b/c")
    views = [parse_pattern(f"//{tag}") for tag in query.tags()]
    yield "pc-chain", query, views, catalog, catalog


@pytest.fixture(scope="module")
def comparison(nasa_catalog):
    rows = []
    results = {}
    owned = []
    try:
        for name, query, views, catalog, owner in _cases(nasa_catalog):
            if owner is not None:
                owned.append(owner)
            loose = evaluate(
                query, catalog, views, "TS", "E", emit_matches=False
            )
            strict = evaluate(
                query, catalog, views, "TS", "E", emit_matches=False,
                strict_pc=True,
            )
            rows.append(
                [name,
                 loose.counters.candidates_added,
                 strict.counters.candidates_added,
                 loose.counters.work, strict.counters.work,
                 loose.match_count]
            )
            results[name] = (loose, strict)
        write_report(
            "ablation_strict_pc",
            "Ablation A6 — strict pc-edge admission (TS+E):",
            format_table(
                ["query", "candidates (loose)", "candidates (strict)",
                 "work (loose)", "work (strict)", "matches"],
                rows,
            ),
        )
        return results
    finally:
        for catalog in owned:
            catalog.close()


def test_matches_identical(comparison):
    for name, (loose, strict) in comparison.items():
        assert loose.match_count == strict.match_count, name


def test_strict_never_admits_more(comparison):
    for name, (loose, strict) in comparison.items():
        assert (
            strict.counters.candidates_added
            <= loose.counters.candidates_added
        ), name


def test_strict_prunes_pc_chain(comparison):
    loose, strict = comparison["pc-chain"]
    assert strict.counters.candidates_added < loose.counters.candidates_added


@pytest.mark.parametrize("strict", [False, True], ids=["loose", "strict"])
def test_bench_pc_chain(benchmark, strict):
    doc = random_trees.generate(
        size=600, tags=list("abc"), max_depth=10, seed=3
    )
    query = parse_pattern("//a/b/c")
    views = [parse_pattern(f"//{tag}") for tag in query.tags()]
    with ViewCatalog(doc) as catalog:
        catalog.add_all(views, "E")

        def run():
            return evaluate(
                query, catalog, views, "TS", "E", emit_matches=False,
                strict_pc=strict,
            ).match_count

        assert benchmark(run) >= 0
