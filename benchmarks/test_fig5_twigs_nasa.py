"""Fig. 5(d): twig queries on NASA — six combinations (no InterJoin)."""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_report
from repro.bench.harness import TWIG_COMBOS, run_query_matrix, work_ratio
from repro.bench.report import format_records
from repro.workloads import nasa


@pytest.fixture(scope="module")
def records(nasa_doc, nasa_catalog):
    recs = run_query_matrix(
        nasa_doc, nasa.TWIG_QUERIES, combos=TWIG_COMBOS,
        dataset="nasa", catalog=nasa_catalog,
    )
    write_report(
        "fig5d_twigs_nasa",
        "Fig. 5(d) — twig queries on NASA, total time (ms):",
        format_records(recs, metric="ms"),
        "work counters:",
        format_records(recs, metric="work"),
        "entries skipped via pointers:",
        format_records(recs, metric="skipped"),
        "TS+E / VJ+LEp work ratio per query: "
        + str({q: round(r, 2) for q, r in
               work_ratio(recs, "TS+E", "VJ+LEp").items()}),
    )
    return recs


def test_engines_agree(records):
    by_query = {}
    for record in records:
        by_query.setdefault(record.query, set()).add(record.matches)
    assert all(len(counts) == 1 for counts in by_query.values())


def test_vj_beats_ts_on_work(records):
    by = {(r.query, r.combo): r for r in records}
    for spec in nasa.TWIG_QUERIES:
        assert by[(spec.name, "VJ+LEp")].work <= by[(spec.name, "TS+E")].work


@pytest.mark.parametrize("combo", TWIG_COMBOS, ids=lambda c: f"{c[0]}+{c[1]}")
def test_bench_twig_workload(benchmark, nasa_catalog, combo, records):
    algorithm, scheme = combo
    from repro.algorithms.engine import evaluate

    def run():
        total = 0
        for spec in nasa.TWIG_QUERIES:
            result = evaluate(
                spec.query, nasa_catalog, spec.views, algorithm, scheme,
                emit_matches=False,
            )
            total += result.match_count
        return total

    assert benchmark(run) >= 0
