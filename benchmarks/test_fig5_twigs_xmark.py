"""Fig. 5(c): twig queries on XMark — six combinations (no InterJoin).

Paper's expected shape: VJ beats TS on every twig; among VJ schemes,
VJ+LEp >= VJ+LE >= VJ+E on most queries, with VJ+E competitive on the
evenly-distributed queries (the paper names Q6/Q9/Q13).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_report
from repro.bench.harness import TWIG_COMBOS, run_query_matrix, work_ratio
from repro.bench.report import format_records
from repro.workloads import xmark


@pytest.fixture(scope="module")
def records(xmark_doc, xmark_catalog):
    recs = run_query_matrix(
        xmark_doc, xmark.TWIG_QUERIES, combos=TWIG_COMBOS,
        dataset="xmark", catalog=xmark_catalog,
    )
    write_report(
        "fig5c_twigs_xmark",
        "Fig. 5(c) — twig queries on XMark, total time (ms):",
        format_records(recs, metric="ms"),
        "work counters:",
        format_records(recs, metric="work"),
        "pointer jumps:",
        format_records(recs, metric="jumps"),
        "TS+E / VJ+LEp work ratio per query: "
        + str({q: round(r, 2) for q, r in
               work_ratio(recs, "TS+E", "VJ+LEp").items()}),
        "VJ+E / VJ+LEp work ratio per query: "
        + str({q: round(r, 2) for q, r in
               work_ratio(recs, "VJ+E", "VJ+LEp").items()}),
    )
    return recs


def test_engines_agree(records):
    by_query = {}
    for record in records:
        by_query.setdefault(record.query, set()).add(record.matches)
    assert all(len(counts) == 1 for counts in by_query.values())


def test_vj_beats_ts_on_work(records):
    by = {(r.query, r.combo): r for r in records}
    for spec in xmark.TWIG_QUERIES:
        assert by[(spec.name, "VJ+LEp")].work <= by[(spec.name, "TS+E")].work


def test_vj_scans_fewer_elements_than_ts(records):
    """TS processes every entry of every input list; VJ only the Q' lists
    (plus pointer-fetched extensions) — the Section III-B advantage 3."""
    by = {(r.query, r.combo): r for r in records}
    for spec in xmark.TWIG_QUERIES:
        ts = by[(spec.name, "TS+LE")].counters.elements_scanned
        vj = by[(spec.name, "VJ+LE")].counters.elements_scanned
        assert vj <= ts, spec.name


@pytest.mark.parametrize("combo", TWIG_COMBOS, ids=lambda c: f"{c[0]}+{c[1]}")
def test_bench_twig_workload(benchmark, xmark_catalog, combo, records):
    algorithm, scheme = combo
    from repro.algorithms.engine import evaluate

    def run():
        total = 0
        for spec in xmark.TWIG_QUERIES:
            result = evaluate(
                spec.query, xmark_catalog, spec.views, algorithm, scheme,
                emit_matches=False,
            )
            total += result.match_count
        return total

    assert benchmark(run) > 0
