"""Micro-benchmarks for the storage substrate.

Per-operation costs of the building blocks every engine sits on: record
codecs, pool-served reads, cursor advancement, B+-tree descent and the
match enumerator.  These establish the unit costs behind the macro
benchmarks' wall-clock numbers (and catch substrate regressions early).
"""

from __future__ import annotations

import pytest

from repro.algorithms.base import Counters, CountingCursor
from repro.datasets import random_trees
from repro.storage.btree import BPlusTreeIndex
from repro.storage.lists import StoredList
from repro.storage.pager import Pager
from repro.storage.records import (
    ElementEntry,
    LinkedEntry,
    element_codec,
    compact_linked_codec,
    linked_codec,
)
from repro.tpq.enumeration import enumerate_matches
from repro.tpq.matching import solution_nodes
from repro.tpq.parser import parse_pattern

N = 2000


def _build_list(columnar: bool) -> StoredList:
    pager = Pager()
    stored = StoredList(
        pager, element_codec(), name="micro", columnar=columnar
    )
    stored.extend(ElementEntry(i * 3, i * 3 + 2, 1) for i in range(N))
    return stored.finalize()


@pytest.fixture(scope="module")
def element_list():
    return _build_list(columnar=True)


@pytest.fixture(scope="module")
def pool_list():
    """The same list with columns disabled: the pool-served slow path."""
    return _build_list(columnar=False)


def test_bench_element_codec_roundtrip(benchmark):
    codec = element_codec()
    entry = ElementEntry(12345, 67890, 7)

    def run():
        return codec.decode(codec.encode(entry))

    assert benchmark(run) == entry


def test_bench_linked_codec_roundtrip(benchmark):
    codec = linked_codec(2)
    entry = LinkedEntry(1, 2, 3, 7, -1, (9, -1))

    def run():
        return codec.decode(codec.encode(entry))

    assert benchmark(run) == entry


def test_bench_compact_codec_roundtrip(benchmark):
    codec = compact_linked_codec(2)
    entry = LinkedEntry(1, 2, 3, 7, -2, (9, -1))

    def run():
        return codec.decode(codec.encode(entry))[0]

    assert benchmark(run) == entry


def test_bench_pool_served_scan(benchmark, element_list):
    def run():
        total = 0
        for entry in element_list.scan():
            total += entry.start
        return total

    assert benchmark(run) > 0


def test_bench_cursor_advance(benchmark, element_list):
    def run():
        cursor = element_list.cursor()
        count = 0
        while cursor.current is not None:
            count += 1
            cursor.advance()
        return count

    assert benchmark(run) == N


def test_bench_pool_served_scan_no_columns(benchmark, pool_list):
    def run():
        total = 0
        for entry in pool_list.scan():
            total += entry.start
        return total

    assert benchmark(run) > 0


def test_bench_cursor_advance_no_columns(benchmark, pool_list):
    def run():
        cursor = pool_list.cursor()
        count = 0
        while cursor.current is not None:
            count += 1
            cursor.advance()
        return count

    assert benchmark(run) == N


def _drain_counting(stored: StoredList) -> int:
    counters = Counters()
    cursor = CountingCursor(stored.cursor(), counters)
    while not cursor.exhausted:
        cursor.advance()
    return counters.elements_scanned


def test_bench_counting_cursor_columnar(benchmark, element_list):
    """The engines' hot loop: CountingCursor advancement on raw ints."""
    assert benchmark(_drain_counting, element_list) == N


def test_bench_counting_cursor_no_columns(benchmark, pool_list):
    assert benchmark(_drain_counting, pool_list) == N


def test_bench_btree_descent(benchmark, element_list):
    index = BPlusTreeIndex.build(
        element_list.pager, [i * 3 for i in range(N)]
    )

    def run():
        return index.first_geq(N * 3 // 2)

    assert benchmark(run) is not None


def test_bench_solution_nodes(benchmark):
    doc = random_trees.generate(
        size=1500, tags=list("abcd"), max_depth=9, seed=5
    )
    pattern = parse_pattern("//a[//b]//c")

    def run():
        return sum(len(v) for v in solution_nodes(doc, pattern).values())

    assert benchmark(run) >= 0


def test_bench_enumeration(benchmark):
    doc = random_trees.generate(
        size=1500, tags=list("abcd"), max_depth=9, seed=5
    )
    pattern = parse_pattern("//a//b//c")
    sols = solution_nodes(doc, pattern)

    def run():
        return len(enumerate_matches(pattern, sols))

    assert benchmark(run) >= 0
