"""Fig. 7: scalability of ViewJoin (VJ+LE on Q11 and Q19).

The paper sweeps XMark documents from 100 MB to 700 MB and reports (a)
memory usage and (b) processing time with its I/O share, both growing
linearly.  We sweep seven generator scales (DESIGN.md §1) and check the
same linear trend on node counts, peak buffer bytes and work counters.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_report
from repro.bench.harness import run_combo
from repro.bench.report import format_series
from repro.datasets import xmark as xmark_data
from repro.storage.catalog import ViewCatalog
from repro.workloads import xmark

SCALES = (0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5)
QUERIES = ("Q11", "Q19")


@pytest.fixture(scope="module")
def sweep():
    rows = []  # (scale, query, record, doc_nodes, peak_bytes)
    for scale in SCALES:
        doc = xmark_data.generate(scale=scale, seed=42)
        with ViewCatalog(doc) as catalog:
            for name in QUERIES:
                spec = xmark.BY_NAME[name]
                record = run_combo(
                    catalog, spec.query, spec.views, "VJ", "LE",
                    dataset=f"xmark@{scale}", query_name=name,
                )
                rows.append((scale, name, record, len(doc)))
    time_series = {
        name: [(scale, round(rec.elapsed_s * 1e3, 2))
               for scale, q, rec, __ in rows if q == name]
        for name in QUERIES
    }
    memory_series = {
        name: [(scale, rec.peak_buffer_bytes)
               for scale, q, rec, __ in rows if q == name]
        for name in QUERIES
    }
    work_series = {
        name: [(scale, rec.work)
               for scale, q, rec, __ in rows if q == name]
        for name in QUERIES
    }
    io_series = {
        name: [(scale, rec.io.logical_reads)
               for scale, q, rec, __ in rows if q == name]
        for name in QUERIES
    }
    io_share_series = {
        name: [
            (scale, round(100 * rec.io.io_seconds / max(rec.elapsed_s, 1e-9), 1))
            for scale, q, rec, __ in rows
            if q == name
        ]
        for name in QUERIES
    }
    write_report(
        "fig7_scalability",
        "Fig. 7(a) — peak buffer bytes of VJ+LE vs scale:",
        format_series(memory_series, "scale", "bytes"),
        "Fig. 7(b) — processing time of VJ+LE vs scale (ms):",
        format_series(time_series, "scale", "ms"),
        "work counters vs scale:",
        format_series(work_series, "scale", "work"),
        "logical page reads vs scale:",
        format_series(io_series, "scale", "pages"),
        "I/O time share vs scale (paper Fig. 7(b): below 15%):",
        format_series(io_share_series, "scale", "% io"),
        "document nodes per scale: "
        + str({scale: nodes for scale, q, __, nodes in rows if q == "Q11"}),
    )
    return rows


def _per_query(sweep, name, selector):
    return [selector(rec) for scale, q, rec, __ in sweep if q == name]


@pytest.mark.parametrize("name", QUERIES)
def test_work_grows_roughly_linearly(sweep, name):
    """Work at 7x scale stays within ~2x of 7x the smallest-scale work."""
    works = _per_query(sweep, name, lambda r: r.work)
    scale_ratio = SCALES[-1] / SCALES[0]
    growth = works[-1] / max(works[0], 1)
    assert growth < 2.0 * scale_ratio, (works, growth)


@pytest.mark.parametrize("name", QUERIES)
def test_memory_bounded_and_monotone_trend(sweep, name):
    peaks = _per_query(sweep, name, lambda r: r.peak_buffer_bytes)
    assert peaks[-1] >= peaks[0]
    # Far below the input size: the buffer holds one partition at a time.
    assert all(peak < 10 * 1024 * 1024 for peak in peaks)


@pytest.mark.parametrize("name", QUERIES)
def test_bench_largest_scale(benchmark, sweep, name):
    doc = xmark_data.generate(scale=SCALES[-1], seed=42)
    spec = xmark.BY_NAME[name]
    from repro.algorithms.engine import evaluate

    with ViewCatalog(doc) as catalog:
        catalog.add_all(spec.views, "LE")

        def run():
            return evaluate(
                spec.query, catalog, spec.views, "VJ", "LE",
                emit_matches=False,
            ).match_count

        assert benchmark(run) >= 0
