"""Table V: memory-based vs disk-based output (TS+E and VJ+LE).

Workload: the paper's twig queries Q4, Q8-Q11, Q13, Q14, Q19, N5-N8.
Expected shape: the disk-based variants are slower, the gap is mostly the
extra spill I/O, and VJ-D keeps beating TS-D (paper: up to 4.9x).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_report
from repro.bench.harness import run_combo
from repro.bench.report import format_records
from repro.workloads import nasa, xmark

XMARK_TWIGS = ("Q4", "Q8", "Q9", "Q10", "Q11", "Q13", "Q14", "Q19")
NASA_TWIGS = ("N5", "N6", "N7", "N8")

VARIANTS = [
    ("TS", "E", "memory", "TS-M"),
    ("TS", "E", "disk", "TS-D"),
    ("VJ", "LE", "memory", "VJ-M"),
    ("VJ", "LE", "disk", "VJ-D"),
]


def _specs():
    return [
        ("xmark", xmark.BY_NAME[name]) for name in XMARK_TWIGS
    ] + [
        ("nasa", nasa.BY_NAME[name]) for name in NASA_TWIGS
    ]


@pytest.fixture(scope="module")
def records(xmark_catalog, nasa_catalog):
    recs = []
    for dataset, spec in _specs():
        catalog = xmark_catalog if dataset == "xmark" else nasa_catalog
        for algorithm, scheme, mode, label in VARIANTS:
            record = run_combo(
                catalog, spec.query, spec.views, algorithm, scheme,
                mode=mode, dataset=dataset, query_name=spec.name,
            )
            record.extra["variant"] = label
            recs.append(record)
    write_report(
        "table5_disk_based",
        "Table V — memory-based vs disk-based output, total time (ms):",
        format_records(recs, metric="ms", column_key="variant"),
        "I/O time (ms) — the paper's parenthesized numbers:",
        format_records(recs, metric="io_ms", column_key="variant"),
        "logical page reads (the disk variants re-read the spill):",
        format_records(recs, metric="pages", column_key="variant"),
        "work counters:",
        format_records(recs, metric="work", column_key="variant"),
    )
    return recs


def _by(records):
    return {(r.query, r.extra["variant"]): r for r in records}


def test_all_variants_agree(records):
    by_query = {}
    for record in records:
        by_query.setdefault(record.query, set()).add(record.matches)
    assert all(len(counts) == 1 for counts in by_query.values())


def test_disk_mode_pays_more_io(records):
    by = _by(records)
    for __, spec in _specs():
        name = spec.name
        assert (
            by[(name, "VJ-D")].io.logical_reads
            >= by[(name, "VJ-M")].io.logical_reads
        ), name
        assert by[(name, "VJ-D")].io.pages_written > 0, name
        assert by[(name, "TS-D")].io.pages_written > 0, name


def test_vj_disk_beats_ts_disk_on_work(records):
    by = _by(records)
    for __, spec in _specs():
        name = spec.name
        assert by[(name, "VJ-D")].work <= by[(name, "TS-D")].work, name


@pytest.mark.parametrize(
    "variant", VARIANTS, ids=lambda v: v[3]
)
def test_bench_variant(benchmark, xmark_catalog, variant, records):
    algorithm, scheme, mode, __ = variant
    from repro.algorithms.engine import evaluate

    spec = xmark.BY_NAME["Q11"]

    def run():
        return evaluate(
            spec.query, xmark_catalog, spec.views, algorithm, scheme,
            mode=mode, emit_matches=False,
        ).match_count

    assert benchmark(run) >= 0
