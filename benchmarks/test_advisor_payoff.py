"""Extension experiment E2: does the view advisor's advice pay off?

For each NASA twig query we compare three plans on real evaluation work:

* **base** — no views (raw element streams);
* **workload** — the hand-designed covering sets of the Fig. 5 workload;
* **advised** — views recommended by the cost-model advisor (which never
  materialized anything while deciding).

Expected: advised <= base everywhere, and competitive with the
hand-designed sets (the advisor optimizes the same Section V objective the
hand sets were built around).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_report
from repro.algorithms.engine import evaluate
from repro.bench.report import format_table
from repro.planner import Planner
from repro.selection.advisor import recommend_views
from repro.selection.estimates import DocumentStatistics
from repro.workloads import nasa

QUERIES = ("N5", "N6", "N7", "N8")


@pytest.fixture(scope="module")
def comparison(nasa_doc, nasa_catalog):
    stats = DocumentStatistics.collect(nasa_doc)
    rows = []
    outcome = {}
    for name in QUERIES:
        spec = nasa.BY_NAME[name]
        planner = Planner(nasa_catalog, scheme="LE")
        base_views = planner.plan(spec.query).base_views
        base = evaluate(
            spec.query, nasa_catalog, base_views, "VJ", "LE",
            emit_matches=False,
        )
        workload = evaluate(
            spec.query, nasa_catalog, spec.views, "VJ", "LE",
            emit_matches=False,
        )
        advice = recommend_views(
            nasa_doc, spec.query, max_view_size=4, stats=stats
        )
        advise_planner = Planner(nasa_catalog, scheme="LE")
        for view in advice.recommended:
            advise_planner.register(view)
        __, advised = advise_planner.answer(spec.query, emit_matches=False)
        rows.append(
            [name,
             base.counters.work, workload.counters.work,
             advised.counters.work,
             "; ".join(v.to_xpath() for v in advice.recommended)]
        )
        outcome[name] = (base, workload, advised)
    write_report(
        "advisor_payoff",
        "Extension E2 — advisor-recommended views vs hand-designed vs"
        " base (VJ+LE work):",
        format_table(
            ["query", "base work", "workload-views work", "advised work",
             "advised views"],
            rows,
        ),
    )
    return outcome


def test_matches_agree(comparison):
    for name, (base, workload, advised) in comparison.items():
        assert base.match_count == workload.match_count == \
            advised.match_count, name


def test_advised_beats_base(comparison):
    for name, (base, __, advised) in comparison.items():
        assert advised.counters.work <= base.counters.work, name


def test_advised_competitive_with_hand_sets(comparison):
    """Within 1.5x of the hand-designed covering sets on every query."""
    for name, (__, workload, advised) in comparison.items():
        assert advised.counters.work <= 1.5 * workload.counters.work, name


@pytest.mark.parametrize("plan_kind", ["base", "advised"])
def test_bench_plans(benchmark, nasa_doc, nasa_catalog, plan_kind,
                     comparison):
    spec = nasa.BY_NAME["N5"]
    planner = Planner(nasa_catalog, scheme="LE")
    if plan_kind == "advised":
        stats = DocumentStatistics.collect(nasa_doc)
        for view in recommend_views(
            nasa_doc, spec.query, max_view_size=4, stats=stats
        ).recommended:
            planner.register(view)
        views = planner.plan(spec.query).all_views
    else:
        views = planner.plan(spec.query).base_views

    def run():
        return evaluate(
            spec.query, nasa_catalog, views, "VJ", "LE",
            emit_matches=False,
        ).match_count

    assert benchmark(run) >= 0
