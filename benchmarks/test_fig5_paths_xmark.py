"""Fig. 5(a): path queries on XMark — all seven engine combinations.

Paper's expected shape: VJ beats TS on every query (1.4-5.8x) and beats IJ
on all paths except the very simple Q6; IJ vs TS flips with tuple-view
redundancy (TS wins Q1/Q2/Q20, IJ wins the rest).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_report
from repro.bench.harness import ALL_COMBOS, run_query_matrix, speedup
from repro.bench.report import format_records
from repro.workloads import xmark


@pytest.fixture(scope="module")
def records(xmark_doc, xmark_catalog):
    recs = run_query_matrix(
        xmark_doc, xmark.PATH_QUERIES, combos=ALL_COMBOS,
        dataset="xmark", catalog=xmark_catalog,
    )
    write_report(
        "fig5a_paths_xmark",
        "Fig. 5(a) — path queries on XMark, total time (ms):",
        format_records(recs, metric="ms"),
        "work counters (machine-independent):",
        format_records(recs, metric="work"),
        "elements scanned:",
        format_records(recs, metric="scanned"),
        "TS+E vs VJ+LEp wall-clock ratio per query: "
        + str({q: round(r, 2) for q, r in
               speedup(recs, "TS+E", "VJ+LEp").items()}),
        "IJ+T vs VJ+LEp wall-clock ratio per query: "
        + str({q: round(r, 2) for q, r in
               speedup(recs, "IJ+T", "VJ+LEp").items()}),
    )
    return recs


def test_engines_agree(records):
    by_query = {}
    for record in records:
        by_query.setdefault(record.query, set()).add(record.matches)
    assert all(len(counts) == 1 for counts in by_query.values())


def test_vj_beats_ts_on_work(records):
    """The headline claim, on machine-independent counters: VJ does less
    work on the majority of queries and is never far behind (the paper's
    exception is the trivial three-step Q6)."""
    by = {(r.query, r.combo): r for r in records}
    wins = 0
    for spec in xmark.PATH_QUERIES:
        ts = by[(spec.name, "TS+E")].work
        vj = by[(spec.name, "VJ+LEp")].work
        assert vj <= 1.5 * ts, f"{spec.name}: VJ+LEp {vj} vs TS+E {ts}"
        if vj <= ts:
            wins += 1
    assert wins >= len(xmark.PATH_QUERIES) // 2 + 1


@pytest.mark.parametrize("combo", ALL_COMBOS, ids=lambda c: f"{c[0]}+{c[1]}")
def test_bench_path_workload(benchmark, xmark_catalog, combo, records):
    """Wall-clock for the whole path workload, one benchmark per combo."""
    algorithm, scheme = combo
    from repro.algorithms.engine import evaluate

    def run():
        total = 0
        for spec in xmark.PATH_QUERIES:
            result = evaluate(
                spec.query, xmark_catalog, spec.views, algorithm, scheme,
                emit_matches=False,
            )
            total += result.match_count
        return total

    total = benchmark(run)
    assert total > 0
