"""Ablation A2: the cost-model weight lambda (paper Section V).

The paper observes evaluation is CPU-bound and fixes lambda = 1.  We sweep
lambda over [0, 1] on the Table II selection scenario and record which
view set the greedy picks and how much evaluation work the pick costs.
Expected: lambda = 1 (and nearby) reproduces the paper's {v2, v5, v6};
small lambda optimizes I/O volume instead and can pick a set that does
more evaluation work.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_report
from repro.algorithms.engine import evaluate
from repro.bench.report import format_table
from repro.selection.greedy import select_views
from repro.storage.catalog import ViewCatalog
from repro.workloads import nasa

LAMBDAS = (0.0, 0.25, 0.5, 0.75, 1.0)


@pytest.fixture(scope="module")
def sweep(nasa_doc):
    rows = []
    with ViewCatalog(nasa_doc) as catalog:
        for lam in LAMBDAS:
            selection = select_views(
                nasa_doc,
                nasa.SELECTION_CANDIDATES,
                nasa.SELECTION_QUERY,
                lam=lam,
                require_complete=True,
            )
            result = evaluate(
                nasa.SELECTION_QUERY, catalog, selection.selected,
                "VJ", "LE", emit_matches=False,
            )
            rows.append(
                [
                    lam,
                    "+".join(sorted(v.name or "?" for v in selection.selected)),
                    result.counters.work,
                    result.io.logical_reads,
                    result.match_count,
                ]
            )
    write_report(
        "ablation_cost_lambda",
        "Ablation A2 — lambda sweep of the Section V cost model"
        " (Table II scenario):",
        format_table(
            ["lambda", "selected set", "eval work", "pages", "matches"],
            rows,
        ),
    )
    return rows


def test_lambda_one_matches_paper(sweep):
    row = next(row for row in sweep if row[0] == 1.0)
    assert row[1] == "+".join(sorted(nasa.EXPECTED_SELECTION))


def test_matches_invariant_across_lambdas(sweep):
    assert len({row[4] for row in sweep}) == 1


def test_lambda_one_among_cheapest(sweep):
    """The CPU-weighted pick is within the best work across the sweep."""
    best = min(row[2] for row in sweep)
    lambda_one = next(row for row in sweep if row[0] == 1.0)
    assert lambda_one[2] <= 1.2 * best


@pytest.mark.parametrize("lam", LAMBDAS)
def test_bench_selection(benchmark, nasa_doc, lam):
    def run():
        return select_views(
            nasa_doc,
            nasa.SELECTION_CANDIDATES,
            nasa.SELECTION_QUERY,
            lam=lam,
            require_complete=True,
        ).selected

    assert len(benchmark(run)) > 0
