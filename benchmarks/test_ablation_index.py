"""Ablation A4: B+-tree-indexed access vs binary search (VJ+E).

Under the element scheme, ViewJoin's flush-time extension locates each
partition's entries by searching the lists; the paper's related work
(Section VII) uses page-based indexes for exactly this.  We compare the
plain binary-search path against the B+-tree descent on the query whose
extension step dominates (single-view decomposition: all non-root tags
fetched at flush time).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_report
from repro.algorithms.engine import evaluate
from repro.bench.report import format_table
from repro.workloads import nasa

#: Single-view covering sets maximize flush-time fetching.
CASES = {
    "N5": [nasa.BY_NAME["N5"].query],
    "N7": [nasa.BY_NAME["N7"].query],
    "Nt": [nasa.QUERY_NT],
}
QUERIES = {"N5": nasa.BY_NAME["N5"].query, "N7": nasa.BY_NAME["N7"].query,
           "Nt": nasa.QUERY_NT}


@pytest.fixture(scope="module")
def comparison(nasa_catalog):
    rows = []
    results = {}
    for name, views in CASES.items():
        query = QUERIES[name]
        plain = evaluate(query, nasa_catalog, views, "VJ", "E")
        indexed = evaluate(
            query, nasa_catalog, views, "VJ", "E", use_index=True
        )
        rows.append(
            [name, plain.counters.comparisons, indexed.counters.comparisons,
             plain.io.logical_reads, indexed.io.logical_reads,
             plain.match_count]
        )
        results[name] = (plain, indexed)
    write_report(
        "ablation_index",
        "Ablation A4 — binary search vs B+-tree descent (VJ+E,"
        " single-view covering sets):",
        format_table(
            ["query", "cmp (bisect)", "cmp (B+tree)", "pages (bisect)",
             "pages (B+tree)", "matches"],
            rows,
        ),
    )
    return results


def test_identical_matches(comparison):
    for name, (plain, indexed) in comparison.items():
        assert plain.match_keys() == indexed.match_keys(), name


def test_index_reduces_comparisons(comparison):
    reduced = sum(
        1
        for plain, indexed in comparison.values()
        if indexed.counters.comparisons <= plain.counters.comparisons
    )
    assert reduced >= 2  # wins on at least two of the three cases


@pytest.mark.parametrize("use_index", [False, True],
                         ids=["bisect", "btree"])
def test_bench_extension_path(benchmark, nasa_catalog, use_index):
    query = QUERIES["Nt"]
    views = CASES["Nt"]

    def run():
        return evaluate(
            query, nasa_catalog, views, "VJ", "E",
            emit_matches=False, use_index=use_index,
        ).match_count

    assert benchmark(run) >= 0
