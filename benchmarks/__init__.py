"""Benchmark suite regenerating every table and figure of the paper's
evaluation section (see DESIGN.md §4 for the experiment index)."""
