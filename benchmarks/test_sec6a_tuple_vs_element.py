"""Section VI-A / Section I claim: IJ+T vs TS+E has no clear winner.

The paper's motivating experiment: with redundancy-free tuple views
InterJoin beats PathStack/TwigStack (up to 3.5x); when data nodes recur in
many tuples, the redundancy flips the outcome (TS up to 2.5x better).
Our workload encodes both regimes: Q1/Q2/Q20/N1 carry redundant views,
Q5/Q6/Q18/N2/N3/N4 carry 1:1 views.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_report
from repro.bench.harness import run_combo, work_ratio
from repro.bench.report import format_records
from repro.storage.catalog import materialize
from repro.workloads import nasa, xmark

REDUNDANT = ("Q1", "Q2", "Q20", "N1")
ONE_TO_ONE = ("Q5", "Q6", "Q18", "N2", "N3", "N4")
COMBOS = [("IJ", "T"), ("TS", "E"), ("PS", "E")]


def _spec(name):
    return xmark.BY_NAME[name] if name.startswith("Q") else nasa.BY_NAME[name]


def _catalog_for(name, xmark_catalog, nasa_catalog):
    return xmark_catalog if name.startswith("Q") else nasa_catalog


@pytest.fixture(scope="module")
def records(xmark_catalog, nasa_catalog):
    recs = []
    for name in REDUNDANT + ONE_TO_ONE:
        spec = _spec(name)
        catalog = _catalog_for(name, xmark_catalog, nasa_catalog)
        for algorithm, scheme in COMBOS:
            record = run_combo(
                catalog, spec.query, spec.views, algorithm, scheme,
                dataset="redundant" if name in REDUNDANT else "1:1",
                query_name=name,
            )
            recs.append(record)
    ratios = work_ratio(recs, "TS+E", "IJ+T")
    write_report(
        "sec6a_tuple_vs_element",
        "Section VI-A — IJ+T vs TS+E vs PS+E, total time (ms):",
        format_records(recs, metric="ms"),
        "work counters:",
        format_records(recs, metric="work"),
        "elements scanned (tuple redundancy shows up here):",
        format_records(recs, metric="scanned"),
        "TS+E / IJ+T work ratio per query (>1: IJ wins, <1: TS wins): "
        + str({q: round(r, 2) for q, r in ratios.items()}),
    )
    return recs


def test_engines_agree(records):
    by_query = {}
    for record in records:
        by_query.setdefault(record.query, set()).add(record.matches)
    assert all(len(counts) == 1 for counts in by_query.values())


def test_redundant_views_duplicate_nodes(xmark_doc):
    """The premise: the redundant queries' tuple views really recur."""
    for name in ("Q1", "Q2", "Q20"):
        spec = xmark.BY_NAME[name]
        worst = max(
            materialize(xmark_doc, view, "T").redundancy()
            for view in spec.views
        )
        assert worst > 1.3, name


def test_redundancy_inflates_interjoin_input(records):
    """On redundancy-heavy queries IJ scans more element instances than TS
    (duplicates in the tuple lists); on 1:1 queries it does not."""
    by = {(r.query, r.combo): r for r in records}
    redundant_excess = [
        by[(q, "IJ+T")].counters.elements_scanned
        - by[(q, "TS+E")].counters.elements_scanned
        for q in REDUNDANT
    ]
    assert all(excess > 0 for excess in redundant_excess)


def test_no_clear_winner(records):
    """IJ wins at least one query and loses at least one (on work)."""
    by = {(r.query, r.combo): r for r in records}
    outcomes = {
        q: by[(q, "IJ+T")].work < by[(q, "TS+E")].work
        for q in REDUNDANT + ONE_TO_ONE
    }
    assert any(outcomes.values()), outcomes
    assert not all(outcomes.values()), outcomes


@pytest.mark.parametrize("group,names", [
    ("redundant", REDUNDANT), ("one_to_one", ONE_TO_ONE),
])
@pytest.mark.parametrize("combo", COMBOS, ids=lambda c: f"{c[0]}+{c[1]}")
def test_bench_group(benchmark, xmark_catalog, nasa_catalog, group, names,
                     combo, records):
    algorithm, scheme = combo
    from repro.algorithms.engine import evaluate

    def run():
        total = 0
        for name in names:
            spec = _spec(name)
            catalog = _catalog_for(name, xmark_catalog, nasa_catalog)
            total += evaluate(
                spec.query, catalog, spec.views, algorithm, scheme,
                emit_matches=False,
            ).match_count
        return total

    assert benchmark(run) >= 0
