"""Table IV: space usage of the schemes on the largest XMark document.

Views: v1 = //item//text//keyword (nodes recur across matches) and
v2 = //person//education (1:1).  Paper's expected shape: E is smallest;
T vs LE has no uniform winner (T > LE for the recurring v1, T <= LE for
v2); LE_p is smaller than LE with roughly half the pointers.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_report
from repro.bench.report import format_table
from repro.datasets import xmark as xmark_data
from repro.storage.catalog import ViewCatalog, materialize
from repro.tpq.parser import parse_pattern
from repro.workloads import xmark

LARGEST_SCALE = 3.5  # the sweep's top scale stands in for 700 MB


@pytest.fixture(scope="module")
def space_rows():
    doc = xmark_data.generate(scale=LARGEST_SCALE, seed=42)
    rows = []
    for text in xmark.SPACE_VIEWS:
        pattern = parse_pattern(text)
        views = {
            scheme: materialize(doc, pattern, scheme)
            for scheme in ("E", "T", "LE", "LEp")
        }
        pointer_counts = {
            scheme: getattr(view, "pointer_stats", None)
            for scheme, view in views.items()
        }
        rows.append(
            {
                "view": text,
                "bytes": {s: v.size_bytes for s, v in views.items()},
                "pointers": {
                    "LE": pointer_counts["LE"].total,
                    "LEp": pointer_counts["LEp"].total,
                },
                "redundancy": views["T"].redundancy(),
            }
        )
    return rows


@pytest.fixture(scope="module", autouse=True)
def report(space_rows):
    table = [
        [
            row["view"],
            row["bytes"]["E"],
            row["bytes"]["T"],
            row["bytes"]["LE"],
            row["bytes"]["LEp"],
            row["pointers"]["LE"],
            row["pointers"]["LEp"],
            round(row["redundancy"], 2),
        ]
        for row in space_rows
    ]
    write_report(
        "table4_space",
        "Table IV — size (bytes) and #pointers of views on XMark"
        f" (scale {LARGEST_SCALE}):",
        format_table(
            ["view", "E", "T", "LE", "LEp", "#ptr LE", "#ptr LEp",
             "T redundancy"],
            table,
        ),
    )


def test_element_scheme_smallest(space_rows):
    for row in space_rows:
        sizes = row["bytes"]
        assert sizes["E"] <= min(sizes["T"], sizes["LE"], sizes["LEp"])


def test_tuple_vs_linked_no_uniform_winner(space_rows):
    """Paper Table IV orderings: v1 (recurring nodes) has
    E < LE_p < LE < T, while v2 (1:1) has E = T < LE_p < LE."""
    v1, v2 = space_rows
    assert v1["redundancy"] > 1.0
    b1 = v1["bytes"]
    assert b1["E"] < b1["LEp"] < b1["LE"] < b1["T"]
    assert v2["redundancy"] == pytest.approx(1.0)
    b2 = v2["bytes"]
    assert b2["E"] == b2["T"] < b2["LEp"] < b2["LE"]


def test_lep_halves_pointers(space_rows):
    for row in space_rows:
        assert row["pointers"]["LEp"] <= row["pointers"]["LE"]
    # At least one view drops a substantial share of pointers.
    assert any(
        row["pointers"]["LEp"] <= 0.8 * row["pointers"]["LE"]
        for row in space_rows
    )


def test_bench_materialization(benchmark):
    doc = xmark_data.generate(scale=1.0, seed=42)
    pattern = parse_pattern(xmark.SPACE_VIEWS[0])

    def run():
        view = materialize(doc, pattern, "LEp")
        return view.pointer_stats.total

    assert benchmark(run) >= 0
