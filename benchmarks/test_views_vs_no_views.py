"""Extension experiment: views vs no views at all.

The InterJoin paper (cited in §I) measured the benefit of views against
PathStack over raw element streams (≈1.5x).  Our planner makes the
"no views" configuration expressible directly: every query node falls
back to a base (single-tag) view, which is exactly the raw per-type
stream the classic joins consume.  We compare three configurations on the
twig workloads:

* **no-views** — TwigStack over base views only (the classic baseline);
* **vj-base** — ViewJoin over the same base views (every edge inter-view);
* **vj-views** — ViewJoin + LE_p over each query's covering view set.

Expected shape: vj-views does the least work (precomputed joins +
skipping); vj-base ~= no-views (nothing precomputed to exploit).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_report
from repro.bench.harness import run_combo
from repro.bench.report import format_records
from repro.planner import Planner
from repro.storage.catalog import ViewCatalog
from repro.workloads import nasa, xmark

SPECS = [xmark.BY_NAME[n] for n in ("Q4", "Q13", "Q14", "Q19")] + [
    nasa.BY_NAME[n] for n in ("N5", "N7")
]


def _catalog_for(spec, xmark_catalog, nasa_catalog):
    return xmark_catalog if spec.name.startswith("Q") else nasa_catalog


@pytest.fixture(scope="module")
def records(xmark_catalog, nasa_catalog):
    recs = []
    for spec in SPECS:
        catalog = _catalog_for(spec, xmark_catalog, nasa_catalog)
        planner = Planner(catalog, scheme="E")
        base_plan = planner.plan(spec.query)  # nothing registered: all base
        base_views = base_plan.base_views
        for label, algorithm, scheme, views in [
            ("no-views(TS+E)", "TS", "E", base_views),
            ("vj-base(VJ+E)", "VJ", "E", base_views),
            ("vj-views(VJ+LEp)", "VJ", "LEp", spec.views),
        ]:
            record = run_combo(
                catalog, spec.query, views, algorithm, scheme,
                dataset="mixed", query_name=spec.name,
            )
            record.extra["config"] = label
            recs.append(record)
    write_report(
        "views_vs_no_views",
        "Extension — views vs no views (base views = raw element"
        " streams), total time (ms):",
        format_records(recs, metric="ms", column_key="config"),
        "work counters:",
        format_records(recs, metric="work", column_key="config"),
        "elements scanned:",
        format_records(recs, metric="scanned", column_key="config"),
    )
    return recs


def test_configs_agree(records):
    by_query = {}
    for record in records:
        by_query.setdefault(record.query, set()).add(record.matches)
    assert all(len(counts) == 1 for counts in by_query.values())


def test_views_reduce_work(records):
    by = {(r.query, r.extra["config"]): r for r in records}
    for spec in SPECS:
        with_views = by[(spec.name, "vj-views(VJ+LEp)")].work
        without = by[(spec.name, "no-views(TS+E)")].work
        assert with_views <= without, spec.name


def test_views_reduce_scanning(records):
    by = {(r.query, r.extra["config"]): r for r in records}
    improved = sum(
        1
        for spec in SPECS
        if by[(spec.name, "vj-views(VJ+LEp)")].counters.elements_scanned
        < by[(spec.name, "no-views(TS+E)")].counters.elements_scanned
    )
    assert improved >= len(SPECS) - 1


@pytest.mark.parametrize(
    "config", ["no-views", "vj-views"], ids=str
)
def test_bench_config(benchmark, xmark_catalog, nasa_catalog, config,
                      records):
    from repro.algorithms.engine import evaluate

    def run():
        total = 0
        for spec in SPECS:
            catalog = _catalog_for(spec, xmark_catalog, nasa_catalog)
            if config == "no-views":
                planner = Planner(catalog, scheme="E")
                views = planner.plan(spec.query).base_views
                result = evaluate(
                    spec.query, catalog, views, "TS", "E",
                    emit_matches=False,
                )
            else:
                result = evaluate(
                    spec.query, catalog, spec.views, "VJ", "LEp",
                    emit_matches=False,
                )
            total += result.match_count
        return total

    assert benchmark(run) >= 0
