"""Table II: cost-based view selection on the NASA dataset.

The paper's heuristic selects {v2, v5, v6} for
Q = //dataset//tableHead[//tableLink//title]//field//definition//para,
while a size-only heuristic selects {v2, v3, v4, v5}; evaluating with the
cost-based set is ~1.93x faster.  We reproduce the candidate costing, the
selected sets and the evaluation gap (on time and on work counters).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_report
from repro.algorithms.engine import evaluate
from repro.bench.report import format_table
from repro.selection.greedy import select_views
from repro.workloads import nasa


@pytest.fixture(scope="module")
def selection(nasa_doc):
    return select_views(
        nasa_doc,
        nasa.SELECTION_CANDIDATES,
        nasa.SELECTION_QUERY,
        lam=1.0,
        require_complete=True,
    )


@pytest.fixture(scope="module")
def size_only_selection():
    by_name = {v.name: v for v in nasa.SELECTION_CANDIDATES}
    return [by_name[name] for name in nasa.SIZE_ONLY_SELECTION]


@pytest.fixture(scope="module", autouse=True)
def report(nasa_doc, nasa_catalog, selection, size_only_selection):
    rows = [
        [name, round(cost.io_term), round(cost.cpu_term), round(cost.total)]
        for name, cost in sorted(selection.costs.items())
    ]
    cost_based = selection.selected
    fast = evaluate(nasa.SELECTION_QUERY, nasa_catalog, cost_based, "VJ", "LE")
    slow = evaluate(
        nasa.SELECTION_QUERY, nasa_catalog, size_only_selection, "VJ", "LE"
    )
    gap = slow.counters.work / max(fast.counters.work, 1)
    write_report(
        "table2_view_selection",
        "Table II — candidate views, |L| (entries) and c(v,Q) at lambda=1:",
        format_table(["view", "io(|L|)", "cpu", "c(v,Q)"], rows),
        f"cost-based selection: {[v.name for v in cost_based]}"
        f" (paper: {list(nasa.EXPECTED_SELECTION)})",
        f"size-only selection: {list(nasa.SIZE_ONLY_SELECTION)}",
        f"work gap size-only / cost-based: {gap:.2f}x (paper: 1.93x)",
    )


def test_selects_paper_set(selection):
    assert sorted(v.name for v in selection.selected) == sorted(
        nasa.EXPECTED_SELECTION
    )


def test_cost_based_does_less_work(nasa_catalog, selection,
                                   size_only_selection):
    fast = evaluate(
        nasa.SELECTION_QUERY, nasa_catalog, selection.selected, "VJ", "LE"
    )
    slow = evaluate(
        nasa.SELECTION_QUERY, nasa_catalog, size_only_selection, "VJ", "LE"
    )
    assert fast.match_keys() == slow.match_keys()
    assert fast.counters.work < slow.counters.work


def test_bench_cost_based(benchmark, nasa_catalog, selection):
    def run():
        return evaluate(
            nasa.SELECTION_QUERY, nasa_catalog, selection.selected,
            "VJ", "LE", emit_matches=False,
        ).match_count

    assert benchmark(run) >= 0


def test_bench_size_only(benchmark, nasa_catalog, size_only_selection):
    def run():
        return evaluate(
            nasa.SELECTION_QUERY, nasa_catalog, size_only_selection,
            "VJ", "LE", emit_matches=False,
        ).match_count

    assert benchmark(run) >= 0
