"""Fig. 5(b): path queries on NASA — all seven engine combinations.

Paper's expected shape: as Fig. 5(a), with *larger* VJ gains because the
NASA element distribution is skewed and pointer-skipping pays off more;
IJ is significantly worse on N1 (tuple redundancy).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_report
from repro.bench.harness import ALL_COMBOS, run_query_matrix, speedup, work_ratio
from repro.bench.report import format_records
from repro.workloads import nasa


@pytest.fixture(scope="module")
def records(nasa_doc, nasa_catalog):
    recs = run_query_matrix(
        nasa_doc, nasa.PATH_QUERIES, combos=ALL_COMBOS,
        dataset="nasa", catalog=nasa_catalog,
    )
    write_report(
        "fig5b_paths_nasa",
        "Fig. 5(b) — path queries on NASA, total time (ms):",
        format_records(recs, metric="ms"),
        "work counters:",
        format_records(recs, metric="work"),
        "entries skipped via pointers:",
        format_records(recs, metric="skipped"),
        "TS+E / VJ+LEp work ratio per query: "
        + str({q: round(r, 2) for q, r in
               work_ratio(recs, "TS+E", "VJ+LEp").items()}),
        "IJ+T / VJ+LEp work ratio per query: "
        + str({q: round(r, 2) for q, r in
               work_ratio(recs, "IJ+T", "VJ+LEp").items()}),
    )
    return recs


def test_engines_agree(records):
    by_query = {}
    for record in records:
        by_query.setdefault(record.query, set()).add(record.matches)
    assert all(len(counts) == 1 for counts in by_query.values())


def test_n1_redundancy_hurts_interjoin(records):
    """N1's tuple views duplicate field nodes per para: IJ does more work
    than VJ by a visible factor (paper: 'significantly worse')."""
    by = {(r.query, r.combo): r for r in records}
    assert by[("N1", "IJ+T")].work > by[("N1", "VJ+LEp")].work


def test_vj_beats_ts_on_work(records):
    """Majority-wins with a bounded worst case (N3 is all pc-edges, where
    pointer-skipping has little to offer)."""
    by = {(r.query, r.combo): r for r in records}
    wins = 0
    for spec in nasa.PATH_QUERIES:
        ts = by[(spec.name, "TS+E")].work
        vj = by[(spec.name, "VJ+LEp")].work
        assert vj <= 1.5 * ts, f"{spec.name}: VJ+LEp {vj} vs TS+E {ts}"
        if vj <= ts:
            wins += 1
    assert wins >= len(nasa.PATH_QUERIES) // 2 + 1


@pytest.mark.parametrize("combo", ALL_COMBOS, ids=lambda c: f"{c[0]}+{c[1]}")
def test_bench_path_workload(benchmark, nasa_catalog, combo, records):
    algorithm, scheme = combo
    from repro.algorithms.engine import evaluate

    def run():
        total = 0
        for spec in nasa.PATH_QUERIES:
            result = evaluate(
                spec.query, nasa_catalog, spec.views, algorithm, scheme,
                emit_matches=False,
            )
            total += result.match_count
        return total

    assert benchmark(run) > 0
